"""Hybrid search — Algorithm 2 of the paper, and the public facade.

Per query the hybrid strategy:

1. looks up the query's bucket in each of the ``L`` tables (Step S1;
   the lookup is shared with whichever strategy runs next);
2. reads the exact ``#collisions`` from the stored bucket sizes;
3. merges the buckets' HyperLogLog sketches (``O(mL)``) to estimate
   ``candSize``;
4. evaluates ``LSHCost = alpha * #collisions + beta * candSize`` and
   ``LinearCost = beta * n`` and dispatches to LSH-based search if
   ``LSHCost < LinearCost``, else to linear search.

Because the ``O(mL)`` estimation overhead is comparable to the hash
computations of Step S1, the hybrid query is never much slower than the
better of the two pure strategies — and on mixtures of easy and hard
queries it beats both, which is the paper's headline result.

:class:`HybridSearcher` works on any built sketched index (including
:class:`~repro.index.multiprobe_index.MultiProbeLSHIndex`).
:class:`HybridLSH` is the one-call facade: pick the family for the
metric, apply the paper's parameter presets, build the index, calibrate
the cost model, answer queries.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive import AdaptivePolicy
from repro.core.calibration import calibrate_cost_model
from repro.core.cost_model import CostModel
from repro.core.linear_scan import LinearScan
from repro.core.lsh_search import LSHSearch
from repro.core.presets import paper_parameters
from repro.core.results import QueryResult, QueryStats, Strategy
from repro.index.lsh_index import LSHIndex
from repro.observability import StageTrace, stage_timer
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive, check_vector

__all__ = ["HybridSearcher", "HybridLSH"]


class HybridSearcher:
    """Algorithm 2: cost-estimated dispatch between LSH and linear search.

    Parameters
    ----------
    index:
        A built :class:`~repro.index.lsh_index.LSHIndex` with sketches
        enabled.
    cost_model:
        The calibrated :class:`~repro.core.cost_model.CostModel`.
    estimator:
        Optional ``candSize`` estimator ``f(index, lookup) -> float``
        (see :func:`repro.sketches.register_estimator`); ``None`` uses
        the paper's merged-HLL estimate, which also enables the
        vectorised batch merge in :meth:`query_batch`.
    """

    def __init__(
        self,
        index: LSHIndex,
        cost_model: CostModel,
        estimator=None,
    ) -> None:
        if not index.is_built:
            from repro.exceptions import EmptyIndexError

            raise EmptyIndexError("HybridSearcher requires a built index")
        if not index.with_sketches:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(
                "HybridSearcher requires an index built with sketches "
                "(with_sketches=True)"
            )
        self.index = index
        self.cost_model = cost_model
        self.estimator = estimator
        self._lsh = LSHSearch(index)
        self._linear = LinearScan(index.points, index.family.metric)

    def _estimate(self, lookup) -> float:
        """``candSize`` for one lookup through the configured estimator."""
        if self.estimator is None:
            return self.index.merged_sketch(lookup).estimate()
        return float(self.estimator(self.index, lookup))

    def _fixed_probes(self) -> int:
        """Probe rings beyond the home bucket the fixed fan-out examines.

        Derived from the index's *effective* probe set (the enumeration
        may run dry below the configured ``num_probes``), so a full-ring
        adaptive lookup reports the same ``probes_used`` as the fixed
        path — a precondition for the bit-identity properties.
        """
        index = self.index
        num_slots = getattr(index, "num_slots", None)
        if num_slots is not None:  # frozen layouts: slots per table - 1
            return int(num_slots) // int(index.num_tables) - 1
        deltas = getattr(index, "_probe_deltas", None)
        if deltas is not None:  # dict multi-probe: effective enumeration
            return int(deltas.shape[0])
        return 0

    def _linear_scan(self) -> LinearScan:
        """The exact-scan fallback, refreshed after incremental inserts.

        ``index.insert`` replaces the points array, so a cached scan
        would silently search the stale copy; rebuilding is cheap (the
        scan object only holds references).
        """
        if self._linear.points is not self.index.points:
            self._linear = LinearScan(self.index.points, self.index.family.metric)
        return self._linear

    def query(self, query: np.ndarray, radius: float) -> QueryResult:
        """Answer one rNNR query with the cost-optimal strategy.

        The returned result's :class:`~repro.core.results.QueryStats`
        records the decision inputs (collisions, estimated candidates,
        both cost estimates) and which strategy ran.
        """
        query = check_vector(query, dim=self.index.dim, name="query")
        radius = check_positive(radius, "radius")
        lookup = self.index.lookup(query)
        num_collisions = lookup.num_collisions
        estimated_candidates = self._estimate(lookup)
        lsh_cost = self.cost_model.lsh_cost(num_collisions, estimated_candidates)
        linear_cost = self.cost_model.linear_cost(self.index.n)

        if lsh_cost < linear_cost:
            result = self._lsh.query_from_lookup(query, radius, lookup)
            strategy = Strategy.LSH
            exact_candidates = result.stats.exact_candidates
        else:
            result = self._linear_scan().query(query, radius)
            strategy = Strategy.LINEAR
            # A linear scan genuinely examines every point.
            exact_candidates = self.index.n

        result.stats = QueryStats(
            num_collisions=num_collisions,
            estimated_candidates=estimated_candidates,
            exact_candidates=exact_candidates,
            estimated_lsh_cost=lsh_cost,
            linear_cost=linear_cost,
            strategy=strategy,
            probes_used=self._fixed_probes(),
            exact=result.stats.exact,
        )
        return result

    def query_batch(
        self,
        queries: np.ndarray,
        radius: float,
        dedup: str | None = None,
        trace: StageTrace | None = None,
        adaptive: AdaptivePolicy | None = None,
    ) -> list[QueryResult]:
        """Answer a query set; Step S1 is hashed for all queries at once.

        Produces exactly the same results as looping :meth:`query`:
        the per-query hashing overhead is amortised through
        :meth:`~repro.index.lsh_index.LSHIndex.lookup_batch`, and all
        queries the cost model sends to linear search are answered by
        one :meth:`~repro.core.linear_scan.LinearScan.query_batch`
        distance-matrix pass (same kernel per row, so bit-identical
        answers).

        ``dedup`` is forwarded to the LSH branch's candidate retrieval;
        both dedup implementations return the identical candidate set,
        so it only affects speed (:class:`~repro.service.BatchQueryEngine`
        passes ``"vectorized"``).

        ``trace`` (a :class:`~repro.observability.StageTrace`) opts into
        per-stage wall-time attribution — ``hash`` / ``estimate`` /
        ``linear`` / ``candidates``.  The spans bracket the existing
        computation without touching it, so traced answers are
        bit-identical to untraced ones.

        ``adaptive`` (an :class:`~repro.core.adaptive.AdaptivePolicy`
        with a ``target_candidates`` budget) switches Step S1 to the
        index's per-query probe-budget lookup where the layout supports
        it: probing beyond the home bucket stops once the merged HLL
        estimate of the candidates collected so far reaches the target.
        With a budget the full fan-out cannot reach — or ``min_probes``
        covering every ring — the answers are bit-identical to the
        fixed path; otherwise the trimmed candidate set is a subset of
        the fixed one at equal-or-fewer probes.  The budget also caps
        dispatch: a row whose estimate certifies ``target_candidates``
        answers from its LSH candidate set even when Equation (1)
        favours the scan, so a budgeted query never examines all ``n``
        points once enough candidates are certified (its answers stay a
        subset of the scan's).
        """
        radius = check_positive(radius, "radius")
        queries = np.asarray(queries)
        use_adaptive = (
            adaptive is not None
            and adaptive.bounds_probes
            and self.estimator is None
            and hasattr(self.index, "lookup_batch_adaptive")
        )
        probes_used: np.ndarray | None = None
        with stage_timer(trace, "hash"):
            if use_adaptive:
                # The adaptive lookup *is* the estimate pass (ring-prefix
                # merges), so the whole decision input lands here.
                lookups, probes_used, adaptive_estimates = (
                    self.index.lookup_batch_adaptive(
                        queries,
                        adaptive.target_candidates,
                        min_probes=adaptive.min_probes,
                    )
                )
            else:
                lookups = self.index.lookup_batch(queries)
        linear_cost = self.cost_model.linear_cost(self.index.n)
        with stage_timer(trace, "estimate"):
            if use_adaptive:
                estimates = adaptive_estimates.tolist()
            elif self.estimator is None:
                # One vectorised pass over the batch-merged registers; the
                # frozen layout computes this without any sketch objects.
                estimates = self.index.merged_estimates_batch(lookups).tolist()
            else:
                estimates = [self._estimate(lookup) for lookup in lookups]
            # Equation (1) for the whole batch in two vector ops; float64
            # elementwise arithmetic matches the scalar lsh_cost() bit for
            # bit, so the dispatch decisions are identical to looping it.
            collision_counts = [lookup.num_collisions for lookup in lookups]
            lsh_costs = (
                self.cost_model.alpha * np.asarray(collision_counts, dtype=np.float64)
                + self.cost_model.beta * np.asarray(estimates, dtype=np.float64)
            ).tolist()
        decisions = list(zip(collision_counts, estimates, lsh_costs))

        # Under an adaptive budget, a row whose (trimmed) estimate already
        # certifies ``target_candidates`` keeps the LSH candidate set even
        # when Equation (1) favours the scan: the budget's contract is to
        # stop examining candidates once enough are certified, and a
        # linear pass over all n points is exactly the over-examination
        # it exists to avoid.  The distance filter still runs, so the
        # row's answers remain a subset of what the scan would return.
        budget_target = (
            float(adaptive.target_candidates) if use_adaptive else float("inf")
        )
        linear_flags = [
            not lsh_cost < linear_cost and not est >= budget_target
            for _, est, lsh_cost in decisions
        ]

        results: list[QueryResult | None] = [None] * len(lookups)
        linear_rows = [i for i, flag in enumerate(linear_flags) if flag]
        if linear_rows:
            with stage_timer(trace, "linear"):
                scanned = self._linear_scan().query_batch(queries[linear_rows], radius)
            for i, result in zip(linear_rows, scanned):
                results[i] = result
        lsh_rows = [i for i in range(len(lookups)) if results[i] is None]
        with stage_timer(trace if lsh_rows else None, "candidates"):
            # The frozen layout can recognise queries with identical bucket
            # sets (equal rows of its bucket-index matrix) and union each
            # distinct set once; other layouts deduplicate per query.
            batch_dedup = getattr(self.index, "candidate_ids_batch", None)
            candidate_sets = (
                batch_dedup([lookups[i] for i in lsh_rows], dedup=dedup)
                if batch_dedup is not None and lsh_rows
                else None
            )
            for j, i in enumerate(lsh_rows):
                results[i] = self._lsh.query_from_lookup(
                    queries[i],
                    radius,
                    lookups[i],
                    dedup=dedup,
                    candidates=None if candidate_sets is None else candidate_sets[j],
                )
        fixed_probes = self._fixed_probes()
        for i, result in enumerate(results):
            num_collisions, estimated_candidates, lsh_cost = decisions[i]
            is_linear = linear_flags[i]
            result.stats = QueryStats(
                num_collisions=num_collisions,
                estimated_candidates=estimated_candidates,
                # A linear scan genuinely examines every point; LSH rows
                # keep the materialised candidate-set size.
                exact_candidates=(
                    self.index.n if is_linear else result.stats.exact_candidates
                ),
                estimated_lsh_cost=lsh_cost,
                linear_cost=linear_cost,
                strategy=Strategy.LINEAR if is_linear else Strategy.LSH,
                probes_used=(
                    int(probes_used[i]) if probes_used is not None else fixed_probes
                ),
                exact=result.stats.exact,
            )
        return results

    def decide(self, query: np.ndarray) -> Strategy:
        """The dispatch decision only (no candidate retrieval).

        Useful for the Figure 3 experiment, which tracks the fraction
        of linear-search calls without needing the answers.
        """
        query = check_vector(query, dim=self.index.dim, name="query")
        lookup = self.index.lookup(query)
        return self.cost_model.choose(
            lookup.num_collisions,
            self._estimate(lookup),
            self.index.n,
        )

    def __repr__(self) -> str:
        return f"HybridSearcher(index={self.index!r}, cost_model={self.cost_model!r})"


class HybridLSH:
    """Facade: build a paper-configured hybrid rNNR searcher in one call.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix.
    metric:
        ``"l2"``, ``"l1"``, ``"cosine"``, ``"hamming"`` or ``"jaccard"``.
    radius:
        The radius the index parameters are tuned for (queries may pass
        a different radius, but the ``1 - delta`` guarantee is stated
        at this one).
    num_tables / delta / hll_precision:
        Paper defaults 50 / 0.1 / 7 (= 128 registers).
    cost_model:
        Pass a :class:`~repro.core.cost_model.CostModel` (e.g. built
        via :meth:`CostModel.from_ratio` with the paper's ratios) to
        skip timing-based calibration; ``None`` runs
        :func:`~repro.core.calibration.calibrate_cost_model`.
    seed:
        Master randomness (family sampling + calibration sampling).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(7)
    >>> points = rng.normal(size=(1000, 24))
    >>> hybrid = HybridLSH(points, metric="l2", radius=2.0,
    ...                    cost_model=CostModel.from_ratio(6.0), seed=1)
    >>> result = hybrid.query(points[3])
    >>> 3 in result.ids
    True
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: str,
        radius: float,
        num_tables: int = 50,
        delta: float = 0.1,
        hll_precision: int = 7,
        cost_model: CostModel | None = None,
        lazy_threshold: int | None = None,
        seed: RandomState = None,
        estimator=None,
    ) -> None:
        points = np.asarray(points)
        params = paper_parameters(
            metric,
            dim=points.shape[1],
            radius=radius,
            num_tables=num_tables,
            delta=delta,
            seed=seed,
        )
        self.params = params
        self.radius = float(radius)
        self.index = LSHIndex(
            params.family,
            k=params.k,
            num_tables=params.num_tables,
            hll_precision=hll_precision,
            lazy_threshold=lazy_threshold,
        ).build(points)
        if cost_model is None:
            cost_model = calibrate_cost_model(points, params.family.metric, seed=seed).model
        self.searcher = HybridSearcher(self.index, cost_model, estimator=estimator)

    @classmethod
    def from_index(
        cls,
        index: LSHIndex,
        radius: float,
        cost_model: CostModel,
        delta: float = 0.1,
        estimator=None,
    ) -> HybridLSH:
        """Wrap an already-built index (e.g. one loaded from disk).

        Skips parameter derivation and construction entirely — the
        index's own family, ``k`` and ``L`` are taken as-is, so a
        persisted index reopened through here answers bit-identically
        to the instance that saved it.
        """
        from repro.core.presets import PaperParameters

        self = cls.__new__(cls)
        self.params = PaperParameters(
            family=index.family,
            # The covering variant has no uniform composite width; its
            # per-table widths follow the block partition.
            k=getattr(index, "k", 0),
            num_tables=index.num_tables,
            p1=index.family.collision_probability(radius),
            radius=float(radius),
            delta=float(delta),
        )
        self.radius = float(radius)
        self.index = index
        self.searcher = HybridSearcher(index, cost_model, estimator=estimator)
        return self

    def freeze(self, refreeze_threshold: int | None = None) -> HybridLSH:
        """Compact the underlying index into the frozen CSR layout.

        Replaces ``self.index`` with its
        :class:`~repro.index.frozen.FrozenLSHIndex` (bit-identical
        answers, vectorised batch primitives) and rewires the searcher.
        Returns ``self`` for chaining.
        """
        self.index = self.index.freeze(refreeze_threshold=refreeze_threshold)
        self.searcher = HybridSearcher(
            self.index, self.searcher.cost_model, estimator=self.searcher.estimator
        )
        return self

    @property
    def cost_model(self) -> CostModel:
        """The cost model driving the per-query dispatch."""
        return self.searcher.cost_model

    def query(self, query: np.ndarray, radius: float | None = None) -> QueryResult:
        """Answer one query; defaults to the tuned radius."""
        return self.searcher.query(query, self.radius if radius is None else radius)

    def query_batch(
        self,
        queries: np.ndarray,
        radius: float | None = None,
        adaptive: AdaptivePolicy | None = None,
    ) -> list[QueryResult]:
        """Answer a query set (one result per row, batched Step S1)."""
        return self.searcher.query_batch(
            np.asarray(queries),
            self.radius if radius is None else radius,
            adaptive=adaptive,
        )

    def __repr__(self) -> str:
        return (
            f"HybridLSH(metric={self.params.family.metric_name}, r={self.radius}, "
            f"k={self.params.k}, L={self.params.num_tables})"
        )
