"""Empirical calibration of the cost-model constants (paper Section 4.2).

The decision in Algorithm 2 needs the ratio ``beta / alpha``, which
"obviously depends on the implementation, the sparsity of the dataset
and the used distance metric".  The paper measures it on "a random set
of 100 queries and 10,000 data points"; this module reproduces that
procedure:

* ``beta`` — time the metric's batch kernel over the sample and divide
  by the number of pairwise distances computed;
* ``alpha`` — time the Step-S2 duplicate-removal primitive (scatter of
  collision ids into an n-bit seen-vector, as the paper suggests) over
  synthetic collision streams and divide by the number of collisions
  processed.

Timings at this granularity are noisy, so both measurements loop until
a minimum wall-clock budget is spent and return averages.  The output
is a :class:`CalibrationReport` carrying the fitted
:class:`~repro.core.cost_model.CostModel` plus the raw measurements for
inspection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.cost_model import CostModel
from repro.distances import Metric, get_metric
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["CalibrationReport", "calibrate_cost_model", "measure_beta", "measure_alpha"]

# Minimum wall-clock seconds to spend per constant; keeps the relative
# timing error well under the ~2x the decision rule can absorb.
_MIN_BUDGET_SECONDS = 0.05


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of a calibration run.

    Attributes
    ----------
    model:
        The fitted :class:`~repro.core.cost_model.CostModel`.
    alpha_seconds / beta_seconds:
        The measured per-operation costs in seconds.
    num_queries / num_points:
        Sample sizes actually used.
    """

    model: CostModel
    alpha_seconds: float
    beta_seconds: float
    num_queries: int
    num_points: int

    @property
    def beta_over_alpha(self) -> float:
        """The decision-relevant ratio."""
        return self.model.beta_over_alpha


def measure_beta(
    points: np.ndarray, queries: np.ndarray, metric: str | Metric
) -> float:
    """Seconds per single distance computation, via the batch kernel.

    Loops the full ``queries x points`` distance computation until at
    least :data:`_MIN_BUDGET_SECONDS` of wall clock is consumed.
    """
    metric = get_metric(metric)
    points = np.asarray(points)
    queries = np.asarray(queries)
    total_ops = 0
    start = time.perf_counter()
    while True:
        for q in queries:
            metric.distances_to(points, q)
        total_ops += queries.shape[0] * points.shape[0]
        elapsed = time.perf_counter() - start
        if elapsed >= _MIN_BUDGET_SECONDS:
            return elapsed / total_ops


def measure_alpha(n: int, num_collisions: int, seed: RandomState = None) -> float:
    """Seconds per duplicate-removal operation (Step S2).

    Simulates the paper's n-bit bitvector technique with the same
    per-collision probe the index's default (``dedup="scalar"``) path
    performs: each id of a duplicated collision stream is checked
    against — and inserted into — the seen-vector individually, so the
    measured cost is per element, exactly the ``alpha`` of Equation (1).

    Parameters
    ----------
    n:
        Size of the point universe (bitvector length).
    num_collisions:
        Length of the simulated collision stream per repetition.
    seed:
        Randomness for the synthetic stream.
    """
    n = check_positive_int(n, "n")
    num_collisions = check_positive_int(num_collisions, "num_collisions")
    rng = ensure_rng(seed)
    stream = rng.integers(0, n, size=num_collisions).tolist()
    total_ops = 0
    start = time.perf_counter()
    while True:
        seen = np.zeros(n, dtype=bool)
        distinct = []
        for point_id in stream:
            if not seen[point_id]:
                seen[point_id] = True
                distinct.append(point_id)
        total_ops += num_collisions
        elapsed = time.perf_counter() - start
        if elapsed >= _MIN_BUDGET_SECONDS:
            return elapsed / total_ops


def calibrate_cost_model(
    points: np.ndarray,
    metric: str | Metric,
    num_queries: int = 100,
    num_points: int = 10_000,
    seed: RandomState = None,
) -> CalibrationReport:
    """Fit ``alpha`` and ``beta`` on a random sample (paper Section 4.2).

    Parameters
    ----------
    points:
        The full ``(n, d)`` dataset; queries and the timing sample are
        drawn from it without replacement (paper: 100 and 10,000).
    metric:
        The metric whose kernel Step S3 will run.
    num_queries / num_points:
        Sample sizes; silently clipped to the dataset size.
    seed:
        Sampling randomness.
    """
    points = check_matrix(points, name="points")
    rng = ensure_rng(seed)
    n = points.shape[0]
    num_queries = min(check_positive_int(num_queries, "num_queries"), n)
    num_points = min(check_positive_int(num_points, "num_points"), n)
    query_sample = points[rng.choice(n, size=num_queries, replace=False)]
    point_sample = points[rng.choice(n, size=num_points, replace=False)]
    beta = measure_beta(point_sample, query_sample, metric)
    # A representative S2 stream is a few bucket loads per table; its
    # length barely affects the per-op cost, so a fixed size suffices.
    alpha = measure_alpha(n=max(n, 2), num_collisions=max(num_points, 2), seed=rng)
    model = CostModel(alpha=alpha, beta=beta)
    return CalibrationReport(
        model=model,
        alpha_seconds=alpha,
        beta_seconds=beta,
        num_queries=num_queries,
        num_points=num_points,
    )
