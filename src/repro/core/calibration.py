"""Empirical calibration of the cost-model constants (paper Section 4.2).

The decision in Algorithm 2 needs the ratio ``beta / alpha``, which
"obviously depends on the implementation, the sparsity of the dataset
and the used distance metric".  The paper measures it on "a random set
of 100 queries and 10,000 data points"; this module reproduces that
procedure:

* ``beta`` — time the metric's batch kernel over the sample and divide
  by the number of pairwise distances computed;
* ``alpha`` — time the Step-S2 duplicate-removal primitive (scatter of
  collision ids into an n-bit seen-vector, as the paper suggests) over
  synthetic collision streams and divide by the number of collisions
  processed.

Timings at this granularity are noisy, so both measurements loop until
a minimum wall-clock budget is spent and return averages.  The output
is a :class:`CalibrationReport` carrying the fitted
:class:`~repro.core.cost_model.CostModel` plus the raw measurements for
inspection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.cost_model import CostModel
from repro.distances import Metric, get_metric
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_matrix, check_positive_int

__all__ = [
    "CalibrationReport",
    "DistanceProfile",
    "calibrate_cost_model",
    "measure_beta",
    "measure_alpha",
    "measure_distance_profile",
]

# Minimum wall-clock seconds to spend per constant; keeps the relative
# timing error well under the ~2x the decision rule can absorb.
_MIN_BUDGET_SECONDS = 0.05


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of a calibration run.

    Attributes
    ----------
    model:
        The fitted :class:`~repro.core.cost_model.CostModel`.
    alpha_seconds / beta_seconds:
        The measured per-operation costs in seconds.
    num_queries / num_points:
        Sample sizes actually used.
    """

    model: CostModel
    alpha_seconds: float
    beta_seconds: float
    num_queries: int
    num_points: int

    @property
    def beta_over_alpha(self) -> float:
        """The decision-relevant ratio."""
        return self.model.beta_over_alpha


@dataclass(frozen=True)
class DistanceProfile:
    """Empirical query-to-point distance distribution of a dataset.

    Built by :func:`measure_distance_profile` from a seeded sample of
    query/point pairs.  The profile answers the radius-from-k question
    the adaptive execution layer asks: *which radius would make a
    radius query return about ``k`` points?* — the distance quantile at
    ``k / n``.  Unlike the timing-based calibration above, the profile
    is deterministic for a fixed seed (pure distance arithmetic, no
    wall clock), so radius estimates are reproducible across runs.

    Attributes
    ----------
    sample:
        Sorted sampled pairwise distances (float64, ascending).
    num_queries / num_points:
        Sample sizes the pairs were drawn from.
    """

    sample: np.ndarray
    num_queries: int
    num_points: int

    def quantile(self, q: float) -> float:
        """Distance at sample quantile ``q`` (clipped to [0, 1])."""
        q = min(1.0, max(0.0, float(q)))
        return float(np.quantile(self.sample, q, method="higher"))

    def radius_for_k(self, k: int, n: int, safety: float = 2.0) -> float:
        """Estimated radius for a top-``k`` query against ``n`` points.

        Targets the ``safety * k / n`` distance quantile (oversampled so
        the first radius pass usually returns at least ``k`` hits) and
        floors the result at the smallest positive sampled distance —
        a radius must be strictly positive.
        """
        if k <= 0 or n <= 0:
            raise ConfigurationError(f"k and n must be positive, got k={k}, n={n}")
        radius = self.quantile(max(1.0, float(safety)) * k / n)
        if radius <= 0.0:
            positive = self.sample[self.sample > 0.0]
            radius = float(positive[0]) if positive.size else 1.0
        return radius

    def __repr__(self) -> str:
        return (
            f"DistanceProfile(pairs={self.sample.size}, "
            f"median={self.quantile(0.5):.3g})"
        )


def measure_distance_profile(
    points: np.ndarray,
    metric: str | Metric,
    num_queries: int = 64,
    num_points: int = 2048,
    seed: RandomState = None,
) -> DistanceProfile:
    """Sample the query-to-point distance distribution (seeded, no timing).

    Draws ``num_queries`` queries and ``num_points`` reference points
    from the dataset without replacement (clipped to its size) and
    records all pairwise distances through the metric's kernel — the
    same kernel every search path uses, so the profile speaks the exact
    distance the radius queries will threshold on.
    """
    metric = get_metric(metric)
    points = check_matrix(points, name="points")
    rng = ensure_rng(seed)
    n = points.shape[0]
    num_queries = min(check_positive_int(num_queries, "num_queries"), n)
    num_points = min(check_positive_int(num_points, "num_points"), n)
    query_sample = points[rng.choice(n, size=num_queries, replace=False)]
    point_sample = points[rng.choice(n, size=num_points, replace=False)]
    sample = np.concatenate(
        [metric.distances_to(point_sample, q) for q in query_sample]
    )
    sample.sort()
    return DistanceProfile(
        sample=sample, num_queries=num_queries, num_points=num_points
    )


def measure_beta(
    points: np.ndarray, queries: np.ndarray, metric: str | Metric
) -> float:
    """Seconds per single distance computation, via the batch kernel.

    Loops the full ``queries x points`` distance computation until at
    least :data:`_MIN_BUDGET_SECONDS` of wall clock is consumed.
    """
    metric = get_metric(metric)
    points = np.asarray(points)
    queries = np.asarray(queries)
    total_ops = 0
    start = time.perf_counter()
    while True:
        for q in queries:
            metric.distances_to(points, q)
        total_ops += queries.shape[0] * points.shape[0]
        elapsed = time.perf_counter() - start
        if elapsed >= _MIN_BUDGET_SECONDS:
            return elapsed / total_ops


def measure_alpha(n: int, num_collisions: int, seed: RandomState = None) -> float:
    """Seconds per duplicate-removal operation (Step S2).

    Simulates the paper's n-bit bitvector technique with the same
    per-collision probe the index's default (``dedup="scalar"``) path
    performs: each id of a duplicated collision stream is checked
    against — and inserted into — the seen-vector individually, so the
    measured cost is per element, exactly the ``alpha`` of Equation (1).

    Parameters
    ----------
    n:
        Size of the point universe (bitvector length).
    num_collisions:
        Length of the simulated collision stream per repetition.
    seed:
        Randomness for the synthetic stream.
    """
    n = check_positive_int(n, "n")
    num_collisions = check_positive_int(num_collisions, "num_collisions")
    rng = ensure_rng(seed)
    stream = rng.integers(0, n, size=num_collisions).tolist()
    total_ops = 0
    start = time.perf_counter()
    while True:
        seen = np.zeros(n, dtype=bool)
        distinct = []
        for point_id in stream:
            if not seen[point_id]:
                seen[point_id] = True
                distinct.append(point_id)
        total_ops += num_collisions
        elapsed = time.perf_counter() - start
        if elapsed >= _MIN_BUDGET_SECONDS:
            return elapsed / total_ops


def calibrate_cost_model(
    points: np.ndarray,
    metric: str | Metric,
    num_queries: int = 100,
    num_points: int = 10_000,
    seed: RandomState = None,
) -> CalibrationReport:
    """Fit ``alpha`` and ``beta`` on a random sample (paper Section 4.2).

    Parameters
    ----------
    points:
        The full ``(n, d)`` dataset; queries and the timing sample are
        drawn from it without replacement (paper: 100 and 10,000).
    metric:
        The metric whose kernel Step S3 will run.
    num_queries / num_points:
        Sample sizes; silently clipped to the dataset size.
    seed:
        Sampling randomness.
    """
    points = check_matrix(points, name="points")
    rng = ensure_rng(seed)
    n = points.shape[0]
    num_queries = min(check_positive_int(num_queries, "num_queries"), n)
    num_points = min(check_positive_int(num_points, "num_points"), n)
    query_sample = points[rng.choice(n, size=num_queries, replace=False)]
    point_sample = points[rng.choice(n, size=num_points, replace=False)]
    beta = measure_beta(point_sample, query_sample, metric)
    # A representative S2 stream is a few bucket loads per table; its
    # length barely affects the per-op cost, so a fixed size suffices.
    alpha = measure_alpha(n=max(n, 2), num_collisions=max(num_points, 2), seed=rng)
    model = CostModel(alpha=alpha, beta=beta)
    return CalibrationReport(
        model=model,
        alpha_seconds=alpha,
        beta_seconds=beta,
        num_queries=num_queries,
        num_points=num_points,
    )
