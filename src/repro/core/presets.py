"""The paper's experiment parameter presets.

Section 4 fixes ``L = 50`` and ``delta = 10%`` and derives ``k`` from
the parameter rule for SimHash and bit sampling; for the p-stable
families (whose collision probability depends on the extra width
parameter ``w``) the paper instead pins

* L1 / CoverType: ``k = 8,  w = 4 r``
* L2 / Corel:     ``k = 7,  w = 2 r``

chosen so the ``delta = 10%`` target is met in practice with ``L = 50``.
Note these pinned values satisfy the 90% reporting guarantee comfortably
for points *well inside* the radius (where most true neighbors of a real
query live) while being somewhat optimistic for points exactly at the
boundary distance ``r`` — a selectivity/recall trade the paper accepts.
:func:`paper_parameters` reproduces exactly this logic for any metric,
returning everything needed to build the index.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distances import get_metric
from repro.exceptions import UnknownMetricError
from repro.hashing.base import LSHFamily, family_for_metric
from repro.hashing.params import concatenation_width
from repro.utils.rng import RandomState
from repro.utils.validation import check_delta, check_positive, check_positive_int

__all__ = ["PaperParameters", "paper_parameters"]

# (k, w/r multiplier) pinned by the paper for the p-stable families.
_PSTABLE_PRESETS = {"l1": (8, 4.0), "l2": (7, 2.0)}


@dataclass(frozen=True)
class PaperParameters:
    """Resolved index parameters for one (metric, radius) pair.

    Attributes
    ----------
    family:
        A constructed LSH family (p-stable families carry their width).
    k:
        Concatenation width.
    num_tables:
        ``L``.
    p1:
        Atomic collision probability at the radius (for reporting).
    radius / delta:
        Echo of the inputs.
    """

    family: LSHFamily
    k: int
    num_tables: int
    p1: float
    radius: float
    delta: float


def paper_parameters(
    metric: str,
    dim: int,
    radius: float,
    num_tables: int = 50,
    delta: float = 0.1,
    seed: RandomState = None,
) -> PaperParameters:
    """Resolve the paper's parameter setting for a metric and radius.

    Parameters
    ----------
    metric:
        ``"hamming"``, ``"cosine"``, ``"l1"``, ``"l2"`` or
        ``"jaccard"`` (or an alias).
    dim:
        Data dimensionality.
    radius:
        The query radius the index is tuned for (``p1`` and, for
        p-stable families, ``w`` depend on it).
    num_tables:
        ``L`` (paper: 50).
    delta:
        Failure probability (paper: 0.1).
    seed:
        Randomness for family construction.

    Returns
    -------
    PaperParameters
    """
    dim = check_positive_int(dim, "dim")
    radius = check_positive(radius, "radius")
    num_tables = check_positive_int(num_tables, "num_tables")
    delta = check_delta(delta)
    name = get_metric(metric).name
    if name in _PSTABLE_PRESETS:
        k, w_multiplier = _PSTABLE_PRESETS[name]
        family = family_for_metric(name, dim, seed=seed, w=w_multiplier * radius)
        p1 = family.collision_probability(radius)
        return PaperParameters(
            family=family, k=k, num_tables=num_tables, p1=p1, radius=radius, delta=delta
        )
    if name in ("hamming", "cosine", "jaccard"):
        family = family_for_metric(name, dim, seed=seed)
        p1 = family.collision_probability(radius)
        k = concatenation_width(num_tables, delta, p1)
        return PaperParameters(
            family=family, k=k, num_tables=num_tables, p1=p1, radius=radius, delta=delta
        )
    raise UnknownMetricError(f"no paper preset for metric {metric!r}")
