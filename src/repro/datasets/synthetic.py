"""Generic synthetic generators used by the dataset stand-ins and tests.

The Figure 1 story of the paper is about *diverse local density*: LSH
shines on queries in sparse regions and collapses on queries in dense
ones.  :func:`gaussian_mixture` is the workhorse that produces exactly
such landscapes — clusters with individually-chosen sizes and spreads
on top of an optional uniform background.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["gaussian_mixture", "uniform_hypercube", "binary_sets"]


def gaussian_mixture(
    n: int,
    dim: int,
    centers: np.ndarray,
    spreads: np.ndarray,
    weights: np.ndarray | None = None,
    background_fraction: float = 0.0,
    background_scale: float = 1.0,
    seed: RandomState = None,
    return_labels: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Sample from a Gaussian mixture with per-cluster spreads.

    Parameters
    ----------
    n:
        Total number of points.
    dim:
        Dimensionality; must match ``centers.shape[1]``.
    centers:
        ``(c, dim)`` cluster centers.
    spreads:
        Length-``c`` per-cluster standard deviations (isotropic).
    weights:
        Length-``c`` sampling weights (uniform when ``None``);
        normalised internally.
    background_fraction:
        Fraction of the ``n`` points drawn uniformly from
        ``[0, background_scale]^dim`` instead of a cluster (label -1).
    background_scale:
        Side length of the background hypercube.
    seed:
        Sampling randomness.
    return_labels:
        Also return the cluster label per point (-1 for background).

    Returns
    -------
    points or (points, labels)
    """
    n = check_positive_int(n, "n")
    dim = check_positive_int(dim, "dim")
    centers = np.asarray(centers, dtype=np.float64)
    spreads = np.asarray(spreads, dtype=np.float64)
    if centers.ndim != 2 or centers.shape[1] != dim:
        raise ConfigurationError(
            f"centers must have shape (c, {dim}), got {centers.shape}"
        )
    num_clusters = centers.shape[0]
    if spreads.shape != (num_clusters,):
        raise ConfigurationError(
            f"spreads must have shape ({num_clusters},), got {spreads.shape}"
        )
    if np.any(spreads < 0):
        raise ConfigurationError("spreads must be non-negative")
    if not 0.0 <= background_fraction < 1.0:
        raise ConfigurationError(
            f"background_fraction must be in [0, 1), got {background_fraction}"
        )
    if weights is None:
        weights = np.full(num_clusters, 1.0 / num_clusters)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (num_clusters,) or np.any(weights < 0) or weights.sum() == 0:
            raise ConfigurationError("weights must be non-negative and sum to > 0")
        weights = weights / weights.sum()

    rng = ensure_rng(seed)
    num_background = int(round(n * background_fraction))
    num_clustered = n - num_background
    labels = np.concatenate(
        [
            rng.choice(num_clusters, size=num_clustered, p=weights),
            np.full(num_background, -1, dtype=np.int64),
        ]
    )
    points = np.empty((n, dim), dtype=np.float64)
    clustered = labels >= 0
    if num_clustered:
        idx = labels[clustered]
        noise = rng.standard_normal(size=(num_clustered, dim))
        points[clustered] = centers[idx] + noise * spreads[idx][:, None]
    if num_background:
        points[~clustered] = rng.uniform(0.0, background_scale, size=(num_background, dim))
    # Shuffle so cluster membership is not encoded in row order.
    order = rng.permutation(n)
    points = points[order]
    labels = labels[order]
    if return_labels:
        return points, labels
    return points


def uniform_hypercube(
    n: int, dim: int, scale: float = 1.0, seed: RandomState = None
) -> np.ndarray:
    """``n`` points uniform on ``[0, scale]^dim`` (a no-structure control)."""
    n = check_positive_int(n, "n")
    dim = check_positive_int(dim, "dim")
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    rng = ensure_rng(seed)
    return rng.uniform(0.0, scale, size=(n, dim))


def binary_sets(
    n: int,
    universe: int,
    avg_set_size: float,
    num_templates: int = 10,
    mutation_rate: float = 0.1,
    seed: RandomState = None,
) -> np.ndarray:
    """0/1 indicator vectors clustered around random template sets.

    Generates data for the Jaccard/MinHash path: ``num_templates``
    random template sets of expected size ``avg_set_size``; each point
    copies a template and flips each universe position with probability
    ``mutation_rate * avg_set_size / universe`` (on→off and off→on
    balanced so sizes stay stable).

    Returns
    -------
    numpy.ndarray
        ``(n, universe)`` uint8 matrix.
    """
    n = check_positive_int(n, "n")
    universe = check_positive_int(universe, "universe")
    num_templates = check_positive_int(num_templates, "num_templates")
    if not 0.0 <= mutation_rate <= 1.0:
        raise ConfigurationError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
    if not 0 < avg_set_size <= universe:
        raise ConfigurationError(
            f"avg_set_size must be in (0, {universe}], got {avg_set_size}"
        )
    rng = ensure_rng(seed)
    density = avg_set_size / universe
    templates = rng.random(size=(num_templates, universe)) < density
    assignment = rng.integers(0, num_templates, size=n)
    points = templates[assignment].copy()
    # Symmetric mutation keeps expected set size at avg_set_size.
    flip_on = (rng.random(size=(n, universe)) < mutation_rate * density) & ~points
    flip_off = (rng.random(size=(n, universe)) < mutation_rate * density) & points
    points ^= flip_on | flip_off
    return points.astype(np.uint8)
