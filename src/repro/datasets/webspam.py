"""Webspam stand-in: 254-dimensional document-style vectors, cosine.

Webspam (350,000 x 254, cosine distance) is the paper's showcase
dataset: Figure 3 shows that even at tiny radii (r <= 0.1) the output
size of some queries approaches ``n/2`` while others report almost
nothing — the "hard query" phenomenon that makes hybrid search strictly
better than both pure strategies (Figure 2(b)).

That structure comes from near-duplicate spam farms: large groups of
pages that are tiny perturbations of a template.  The stand-in builds
a *dominant* farm holding ~55% of the data whose per-point perturbation
levels span a wide range (near-exact duplicates through loose copies),
a smaller secondary farm, and diffuse "legitimate" pages:

* queries landing near the farm core report up to ~n/2 points and
  collide with the core in most of the ``L`` tables — the de-duplication
  cost explodes exactly as in Figure 1's dense-region query ``q2``;
* the perturbation gradient makes the share of such hard queries *grow*
  across the paper's 0.05-0.1 radius sweep (Figure 3 right panel);
* diffuse queries stay cheap at every radius.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["webspam_like"]

#: Figure 2(b) / Figure 3 x-axis.
_PAPER_RADII = (0.05, 0.06, 0.07, 0.08, 0.09, 0.10)

# (fraction of n, minimum eps, maximum eps): eps is the per-point
# perturbation level; two farm points at levels e1, e2 sit at cosine
# distance ~ (e1^2 + e2^2) / 2.  The dominant farm's [0.02, 0.35] range
# spans near-exact duplicates (pair distance ~4e-4) through loose
# copies (pair distance ~0.12, at the edge of the radius sweep).
_FARMS = ((0.55, 0.02, 0.35), (0.10, 0.15, 0.35))


def webspam_like(n: int = 20_000, dim: int = 254, seed: RandomState = 0) -> Dataset:
    """Generate the Webspam stand-in (see module docstring).

    Parameters
    ----------
    n:
        Number of points (paper: 350,000; default scaled to 20,000).
    dim:
        Dimensionality (paper: 254).
    seed:
        Generation randomness.
    """
    rng = ensure_rng(seed)
    counts = [int(round(fraction * n)) for fraction, _, _ in _FARMS]
    num_diffuse = n - sum(counts)

    blocks: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    for farm_id, ((_, eps_low, eps_high), count) in enumerate(zip(_FARMS, counts)):
        template = rng.uniform(0.0, 1.0, size=dim)
        template /= np.linalg.norm(template)
        eps = rng.uniform(eps_low, eps_high, size=count)
        noise = rng.standard_normal(size=(count, dim)) / np.sqrt(dim)
        blocks.append(template[None, :] + noise * eps[:, None])
        labels.append(np.full(count, farm_id, dtype=np.int64))

    # Diffuse pages: sparse-ish heavy-tailed non-negative vectors whose
    # mutual cosine distances are large (>> 0.1).
    diffuse = rng.exponential(1.0, size=(num_diffuse, dim))
    sparsity_mask = rng.random(size=(num_diffuse, dim)) < 0.15
    diffuse = diffuse * sparsity_mask
    # Guard against all-zero rows (distance convention would distort them).
    empty = ~sparsity_mask.any(axis=1)
    if empty.any():
        diffuse[empty, 0] = 1.0
    blocks.append(diffuse)
    labels.append(np.full(num_diffuse, -1, dtype=np.int64))

    points = np.concatenate(blocks, axis=0)
    label_arr = np.concatenate(labels)
    order = rng.permutation(n)
    return Dataset(
        name="webspam-like",
        points=points[order],
        metric="cosine",
        radii=_PAPER_RADII,
        beta_over_alpha=10.0,
        description=(
            "Synthetic stand-in for Webspam (350,000 x 254, cosine); "
            "a dominant near-duplicate farm reproduces the paper's "
            "hard-query structure at radii 0.05-0.1"
        ),
        extras={"labels": label_arr[order], "farms": _FARMS},
    )
