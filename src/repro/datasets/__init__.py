"""Dataset substrate: synthetic stand-ins for the paper's four datasets.

The paper evaluates on Corel Images (L2), CoverType (L1), Webspam
(cosine) and MNIST (Hamming on 64-bit SimHash fingerprints).  Those are
public downloads; this offline reproduction generates synthetic
stand-ins that preserve the properties each experiment exercises —
dimensionality, metric and, crucially, the *local-density structure*
that makes some queries "hard" (output size near ``n/2``) and others
easy.  See DESIGN.md §4 for the substitution rationale.

Scale note: default sizes are laptop-scale (paper sizes were 60k-581k);
every generator takes ``n`` so the benchmarks can grow them, and radii
are engineered so the *paper's own x-axis values* remain meaningful.
"""

from repro.datasets.base import Dataset
from repro.datasets.corel import corel_like
from repro.datasets.covertype import covertype_like
from repro.datasets.fingerprints import simhash_fingerprints
from repro.datasets.io import load_dense, load_libsvm
from repro.datasets.mnist import mnist_like
from repro.datasets.queries import split_queries
from repro.datasets.synthetic import (
    binary_sets,
    gaussian_mixture,
    uniform_hypercube,
)
from repro.datasets.webspam import webspam_like

__all__ = [
    "Dataset",
    "corel_like",
    "covertype_like",
    "webspam_like",
    "mnist_like",
    "simhash_fingerprints",
    "split_queries",
    "gaussian_mixture",
    "uniform_hypercube",
    "binary_sets",
    "load_libsvm",
    "load_dense",
]
