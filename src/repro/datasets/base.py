"""The :class:`Dataset` container shared by generators and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """A point set plus the metadata the experiment harness needs.

    Attributes
    ----------
    name:
        Short identifier (``"webspam-like"``, ...).
    points:
        ``(n, d)`` data matrix.
    metric:
        Canonical metric name the dataset is meant to be searched under.
    radii:
        The radius sweep of the corresponding paper figure (the same
        x-axis values; the stand-ins are scaled to make them
        meaningful).
    beta_over_alpha:
        The paper's measured cost ratio for this dataset, used when the
        benchmarks skip timing-based calibration.
    description:
        One-line provenance note.
    extras:
        Generator-specific payloads (e.g. raw MNIST-like images before
        fingerprinting, cluster assignments for diagnostics).
    """

    name: str
    points: np.ndarray
    metric: str
    radii: tuple[float, ...] = ()
    beta_over_alpha: float = 1.0
    description: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        """Number of points."""
        return int(self.points.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality."""
        return int(self.points.shape[1])

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, n={self.n}, d={self.dim}, "
            f"metric={self.metric!r})"
        )
