"""CoverType stand-in: 54-dimensional cartographic-style data, L1.

The paper's CoverType dataset is 581,012 cartographic records with
``d = 54`` (10 quantitative columns such as elevation and distances,
44 binary soil/wilderness indicators) searched under L1 with radii
3000-4000 (Figure 2(c)).  The stand-in mirrors the column structure:
the quantitative columns carry per-column scales matching the real
attribute ranges (so the L1 mass lands in the paper's radius band),
the binary columns follow per-cluster Bernoulli profiles, and cluster
weights are heavily skewed like the real class distribution (two cover
types dominate).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["covertype_like"]

#: Figure 2(c) x-axis.
_PAPER_RADII = (3000.0, 3200.0, 3400.0, 3600.0, 3800.0, 4000.0)

# Per-column noise scales of the 10 quantitative attributes, loosely
# modelled on the real CoverType ranges (elevation, aspect, slope,
# horizontal/vertical distances, hillshades).  Their total L1
# contribution (1.128 * sum(scales) ~ 3,450 with a spread of ~1,000)
# centres the within-cluster distance mass on the paper's 3000-4000
# sweep, so the neighbor fraction grows across it instead of saturating.
_QUANT_SCALES = 2.6 * np.array(
    [280.0, 90.0, 12.0, 250.0, 60.0, 220.0, 25.0, 25.0, 30.0, 180.0]
)
_QUANT_CENTER_LOW = np.array([1800.0, 0.0, 5.0, 0.0, 0.0, 500.0, 150.0, 180.0, 100.0, 500.0])
_QUANT_CENTER_HIGH = np.array([3600.0, 360.0, 35.0, 1400.0, 350.0, 4000.0, 250.0, 250.0, 200.0, 6000.0])


def covertype_like(
    n: int = 30_000, num_clusters: int = 7, seed: RandomState = 0
) -> Dataset:
    """Generate the CoverType stand-in (see module docstring).

    Parameters
    ----------
    n:
        Number of points (paper: 581,012; default scaled to 30,000).
    num_clusters:
        Cover-type classes (real dataset: 7).
    seed:
        Generation randomness.
    """
    rng = ensure_rng(seed)
    quant_centers = rng.uniform(
        _QUANT_CENTER_LOW, _QUANT_CENTER_HIGH, size=(num_clusters, 10)
    )
    # Real CoverType is dominated by two classes (~85% of records).
    weights = np.array([0.48, 0.37] + [0.15 / (num_clusters - 2)] * (num_clusters - 2))
    weights = weights[:num_clusters] / weights[:num_clusters].sum()
    labels = rng.choice(num_clusters, size=n, p=weights)

    quantitative = quant_centers[labels] + rng.standard_normal(size=(n, 10)) * _QUANT_SCALES
    # 44 binary indicator columns with cluster-specific on-probabilities.
    indicator_profiles = rng.beta(0.5, 3.0, size=(num_clusters, 44))
    binary = (rng.random(size=(n, 44)) < indicator_profiles[labels]).astype(np.float64)
    points = np.concatenate([quantitative, binary], axis=1)

    return Dataset(
        name="covertype-like",
        points=points,
        metric="l1",
        radii=_PAPER_RADII,
        beta_over_alpha=10.0,
        description=(
            "Synthetic stand-in for CoverType (581,012 x 54 cartographic "
            "records, L1); column scales chosen so the paper's radii "
            "3000-4000 are meaningful"
        ),
        extras={"labels": labels, "quant_centers": quant_centers},
    )
