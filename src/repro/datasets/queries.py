"""Query-set extraction — the paper's evaluation protocol.

"For each dataset, we randomly remove 100 points and use it as the
query set" (Section 4).  :func:`split_queries` reproduces that split
deterministically given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["split_queries"]


def split_queries(
    points: np.ndarray, num_queries: int = 100, seed: RandomState = None
) -> tuple[np.ndarray, np.ndarray]:
    """Randomly remove ``num_queries`` points to use as the query set.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix.
    num_queries:
        How many points to remove (paper: 100); must be < n.
    seed:
        Sampling randomness.

    Returns
    -------
    (data, queries):
        ``data`` is ``(n - num_queries, d)`` and keeps the original row
        order of the surviving points; ``queries`` is
        ``(num_queries, d)``.
    """
    points = check_matrix(points, name="points")
    num_queries = check_positive_int(num_queries, "num_queries")
    n = points.shape[0]
    if num_queries >= n:
        raise ConfigurationError(
            f"num_queries ({num_queries}) must be smaller than the dataset ({n})"
        )
    rng = ensure_rng(seed)
    query_rows = rng.choice(n, size=num_queries, replace=False)
    mask = np.ones(n, dtype=bool)
    mask[query_rows] = False
    return points[mask], points[query_rows]
