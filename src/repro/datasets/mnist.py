"""MNIST stand-in: digit-like images -> 64-bit SimHash fingerprints, Hamming.

The paper's MNIST experiment (Figure 2(a)) does not search raw pixels:
it first applies SimHash to obtain 64-bit fingerprints and then runs
bit-sampling LSH under Hamming distance with radii 12-17.  We reproduce
the *entire pipeline*: generate digit-like 28x28 images (ten class
prototypes of smooth random blobs plus per-image noise), flatten, and
push them through :func:`~repro.datasets.fingerprints.simhash_fingerprints`.

The per-image noise level is drawn from a range that puts the Hamming
distance between same-class fingerprints around 8-20 bits, so the
paper's radius sweep 12-17 captures a growing neighbor fraction, while
cross-class fingerprints sit at 22+ bits.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.fingerprints import simhash_fingerprints
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["mnist_like"]

#: Figure 2(a) x-axis.
_PAPER_RADII = (12.0, 13.0, 14.0, 15.0, 16.0, 17.0)

_IMAGE_SIDE = 28
# More classes than the 10 real digits: with the scaled-down n the
# per-class neighborhoods would otherwise hold ~10% of the dataset,
# making every query "hard" — the real MNIST's output sizes at radii
# 12-17 are a small, growing fraction of n, which 20 sparser classes
# reproduce.
_NUM_CLASSES = 20


def _smooth_prototype(rng: np.random.Generator) -> np.ndarray:
    """A smooth, *sparse* random 28x28 blob imitating a digit stroke.

    Sparsity matters: prototypes sharing most of their support would sit
    at small mutual angles, collapsing the between-class Hamming
    distances of the fingerprints.  Activating ~30% of the coarse cells
    keeps cross-class angles near 70 degrees (fingerprint distance ~25
    of 64 bits) while same-class images stay within the paper's 12-17
    bit radius sweep.
    """
    coarse = rng.random(size=(7, 7)) * (rng.random(size=(7, 7)) < 0.22)
    # Nearest-neighbor 4x upsampling, then a light box blur for smoothness.
    image = np.kron(coarse, np.ones((4, 4)))
    padded = np.pad(image, 1, mode="edge")
    blurred = (
        padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:] + image
    ) / 5.0
    return blurred.ravel()


def mnist_like(
    n: int = 20_000, bits: int = 64, seed: RandomState = 0
) -> Dataset:
    """Generate the MNIST stand-in fingerprints (see module docstring).

    Parameters
    ----------
    n:
        Number of images (paper: 60,000; default scaled to 20,000).
    bits:
        Fingerprint length (paper: 64).
    seed:
        Generation randomness.

    Returns
    -------
    Dataset
        ``points`` is the ``(n, bits)`` binary fingerprint matrix under
        the Hamming metric; ``extras["images"]`` holds the raw
        ``(n, 784)`` images and ``extras["labels"]`` the class labels.
    """
    rng = ensure_rng(seed)
    prototypes = np.stack([_smooth_prototype(rng) for _ in range(_NUM_CLASSES)])
    labels = rng.integers(0, _NUM_CLASSES, size=n)
    # Noise level per image controls the same-class fingerprint Hamming
    # distance (~ bits * angle / pi); [0.45, 0.85] spans ~11-18 bits of
    # 64, so the paper's radius sweep 12-17 captures a gradually growing
    # share of each class while cross-class pairs stay at 25+ bits.
    noise_level = rng.uniform(0.45, 0.85, size=n)
    proto_norms = np.linalg.norm(prototypes, axis=1)
    noise = rng.standard_normal(size=(n, _IMAGE_SIDE * _IMAGE_SIDE))
    noise /= np.linalg.norm(noise, axis=1, keepdims=True)
    images = prototypes[labels] + noise * (noise_level * proto_norms[labels])[:, None]
    np.clip(images, 0.0, None, out=images)  # pixels are non-negative

    fingerprints = simhash_fingerprints(images, bits=bits, seed=rng)
    return Dataset(
        name="mnist-like",
        points=fingerprints,
        metric="hamming",
        radii=_PAPER_RADII,
        beta_over_alpha=1.0,
        description=(
            "Synthetic stand-in for MNIST (60,000 x 780 -> 64-bit SimHash "
            "fingerprints, Hamming); the paper's radii 12-17 are used as-is"
        ),
        extras={"images": images, "labels": labels},
    )
