"""Corel-Images stand-in: 32-dimensional color-histogram-like data, L2.

The paper's Corel Images dataset is 68,040 color histograms with
``d = 32`` searched under L2 with radii 0.35-0.6 (Figure 2(d)).  The
stand-in samples a Gaussian mixture over ``[0, 1]^32`` whose cluster
spreads are tuned so that within-cluster L2 distances concentrate in
exactly that radius band, with skewed cluster weights plus a uniform
background to create the diverse local densities of Figure 1.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.synthetic import gaussian_mixture
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["corel_like"]

#: Figure 2(d) x-axis.
_PAPER_RADII = (0.35, 0.40, 0.45, 0.50, 0.55, 0.60)


def corel_like(
    n: int = 20_000, num_clusters: int = 30, seed: RandomState = 0
) -> Dataset:
    """Generate the Corel stand-in (see module docstring).

    Parameters
    ----------
    n:
        Number of points (paper: 68,040; default scaled to 20,000).
    num_clusters:
        Mixture components; their spreads and weights are drawn to
        span sparse and dense neighbourhoods.
    seed:
        Generation randomness.
    """
    rng = ensure_rng(seed)
    centers = rng.uniform(0.1, 0.9, size=(num_clusters, 32))
    # Within-cluster pair distance concentrates near sqrt(2 d) * spread
    # = 8 * spread for d = 32; spreads in [0.045, 0.08] put that mass
    # across the paper's 0.35-0.6 radius sweep.  Spreads grow with the
    # cluster's weight rank, so the heaviest clusters are the tightest:
    # their neighborhoods swallow the whole cluster as r grows, which is
    # what turns queries "hard" at the top of the sweep.
    spreads = np.linspace(0.045, 0.08, num_clusters)
    # Zipf-ish weights: a few dense clusters, a long sparse tail.
    weights = 1.0 / np.arange(1, num_clusters + 1)
    points, labels = gaussian_mixture(
        n,
        dim=32,
        centers=centers,
        spreads=spreads,
        weights=weights,
        background_fraction=0.2,
        background_scale=1.0,
        seed=rng,
        return_labels=True,
    )
    return Dataset(
        name="corel-like",
        points=points,
        metric="l2",
        radii=_PAPER_RADII,
        beta_over_alpha=6.0,
        description=(
            "Synthetic stand-in for Corel Images (68,040 x 32 color "
            "histograms, L2); Gaussian mixture scaled so the paper's "
            "radii 0.35-0.6 are meaningful"
        ),
        extras={"labels": labels, "centers": centers, "spreads": spreads},
    )
