"""SimHash fingerprinting — real vectors to compact binary codes.

The paper "applied SimHash to obtain 64-bit fingerprint vectors for
MNIST and use bit sampling LSH for Hamming distance".  The fingerprint
of a vector is the sign pattern of its projections onto ``bits`` random
hyperplanes; by the random-hyperplane collision argument, the Hamming
distance between two fingerprints concentrates around
``bits * theta / pi`` for vectors at angle ``theta`` — so near vectors
in angle become near fingerprints in Hamming distance.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["simhash_fingerprints"]


def simhash_fingerprints(
    points: np.ndarray, bits: int = 64, seed: RandomState = None
) -> np.ndarray:
    """Project ``points`` onto random hyperplanes and keep the sign bits.

    Parameters
    ----------
    points:
        ``(n, d)`` real matrix (e.g. flattened images).
    bits:
        Fingerprint length (paper: 64).
    seed:
        Hyperplane randomness.

    Returns
    -------
    numpy.ndarray
        ``(n, bits)`` uint8 matrix of 0/1 entries, ready for
        :class:`~repro.hashing.bit_sampling.BitSamplingLSH` under
        Hamming distance.
    """
    points = check_matrix(points, name="points")
    bits = check_positive_int(bits, "bits")
    rng = ensure_rng(seed)
    planes = rng.standard_normal(size=(points.shape[1], bits))
    projections = np.asarray(points, dtype=np.float64) @ planes
    return (projections > 0.0).astype(np.uint8)
