"""Loaders for the paper's real dataset files (when you have them).

The four evaluation datasets are public but not redistributable with
this repository:

* Corel Images and CoverType ship as CSV/space-separated numeric files
  from the UCI repository — use :func:`load_dense`;
* Webspam and MNIST ship in LIBSVM sparse format from the LIBSVM
  dataset page — use :func:`load_libsvm`.

Both loaders return plain ``(n, d)`` float arrays ready for
:class:`~repro.datasets.base.Dataset` /
:func:`~repro.datasets.queries.split_queries`, so the experiment
functions run unmodified on the real data:

>>> points = load_libsvm("webspam_wc_normalized_unigram.svm", dim=254)  # doctest: +SKIP
>>> dataset = Dataset("webspam", points, metric="cosine",
...                   radii=(0.05, 0.06, 0.07, 0.08, 0.09, 0.10))      # doctest: +SKIP
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive_int

__all__ = ["load_libsvm", "load_dense"]


def load_libsvm(
    path: str,
    dim: int,
    max_rows: int | None = None,
    zero_based: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Parse a LIBSVM-format file into a dense matrix plus labels.

    Format, one point per line::

        <label> <index>:<value> <index>:<value> ...

    Parameters
    ----------
    path:
        File to read (plain text; decompress .bz2 downloads first).
    dim:
        Number of feature dimensions (columns of the output); indexes
        beyond it raise, catching a wrong ``dim`` early.
    max_rows:
        Stop after this many points (for scaled-down runs).
    zero_based:
        LIBSVM indexes are 1-based by convention; pass ``True`` for
        files using 0-based indexes.

    Returns
    -------
    (points, labels):
        ``(n, dim)`` float64 matrix and length-``n`` float64 labels.
    """
    dim = check_positive_int(dim, "dim")
    rows: list[np.ndarray] = []
    labels: list[float] = []
    offset = 0 if zero_based else 1
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                labels.append(float(parts[0]))
            except ValueError as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: bad label {parts[0]!r}"
                ) from exc
            row = np.zeros(dim, dtype=np.float64)
            for token in parts[1:]:
                index_text, _, value_text = token.partition(":")
                if not value_text:
                    raise ConfigurationError(
                        f"{path}:{line_number}: bad feature token {token!r}"
                    )
                index = int(index_text) - offset
                if not 0 <= index < dim:
                    raise ConfigurationError(
                        f"{path}:{line_number}: feature index {index_text} out of "
                        f"range for dim={dim}"
                    )
                row[index] = float(value_text)
            rows.append(row)
            if max_rows is not None and len(rows) >= max_rows:
                break
    if not rows:
        raise ConfigurationError(f"{path}: no data rows found")
    return np.stack(rows), np.asarray(labels)


def load_dense(
    path: str,
    delimiter: str | None = None,
    max_rows: int | None = None,
    label_column: int | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Load a dense numeric text file (CSV or whitespace-separated).

    Parameters
    ----------
    path:
        File to read.
    delimiter:
        Column separator (``None`` = any whitespace; pass ``","`` for
        CSV files such as UCI CoverType).
    max_rows:
        Stop after this many points.
    label_column:
        Column to split off as labels (e.g. ``-1`` for CoverType's
        trailing cover-type class); ``None`` keeps all columns as
        features.

    Returns
    -------
    (points, labels):
        ``(n, d)`` float64 matrix; ``labels`` is ``None`` when no
        label column was requested.
    """
    data = np.loadtxt(path, delimiter=delimiter, max_rows=max_rows, ndmin=2)
    if data.size == 0:
        raise ConfigurationError(f"{path}: no data rows found")
    if label_column is None:
        return data, None
    labels = data[:, label_column]
    features = np.delete(data, label_column, axis=1)
    return features, labels
