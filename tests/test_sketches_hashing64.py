"""Tests for the shared 64-bit sketch hashing."""

import numpy as np

from repro.sketches.hashing64 import hash64, rho_positions, split_hash


class TestHash64:
    def test_deterministic(self):
        a = hash64(np.arange(100), seed=5)
        b = hash64(np.arange(100), seed=5)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self):
        a = hash64(np.arange(100), seed=1)
        b = hash64(np.arange(100), seed=2)
        assert not np.array_equal(a, b)

    def test_injective_on_small_range(self):
        h = hash64(np.arange(100_000), seed=0)
        assert np.unique(h).size == 100_000

    def test_uniformity_top_bit(self):
        h = hash64(np.arange(50_000), seed=3)
        top = (h >> np.uint64(63)).astype(float)
        assert abs(top.mean() - 0.5) < 0.02

    def test_scalar_input(self):
        assert hash64(7, seed=0).shape == ()

    def test_dtype(self):
        assert hash64(np.arange(4)).dtype == np.uint64


class TestSplitHash:
    def test_index_range(self):
        h = hash64(np.arange(10_000), seed=0)
        idx, rest = split_hash(h, p=7)
        assert idx.min() >= 0
        assert idx.max() < 128

    def test_rest_mask(self):
        h = hash64(np.arange(1000), seed=0)
        _, rest = split_hash(h, p=7)
        assert np.all(rest < np.uint64(1 << 57))

    def test_reconstruction(self):
        h = hash64(np.arange(1000), seed=0)
        idx, rest = split_hash(h, p=4)
        rebuilt = (idx.astype(np.uint64) << np.uint64(60)) | rest
        assert np.array_equal(rebuilt, h)


class TestRhoPositions:
    def test_known_values(self):
        width = 8
        # 0b10000000 -> leading bit set -> rho 1
        assert rho_positions(np.array([1 << 7], dtype=np.uint64), width)[0] == 1
        # 0b00000001 -> rho 8
        assert rho_positions(np.array([1], dtype=np.uint64), width)[0] == 8
        # all zero -> width + 1
        assert rho_positions(np.array([0], dtype=np.uint64), width)[0] == 9

    def test_geometric_distribution(self):
        """rho follows Geometric(1/2): P(rho = k) ~ 2^-k."""
        h = hash64(np.arange(100_000), seed=1)
        _, rest = split_hash(h, p=7)
        rho = rho_positions(rest, 57)
        frac_one = float(np.mean(rho == 1))
        frac_two = float(np.mean(rho == 2))
        assert abs(frac_one - 0.5) < 0.01
        assert abs(frac_two - 0.25) < 0.01

    def test_range(self):
        h = hash64(np.arange(10_000), seed=2)
        _, rest = split_hash(h, p=7)
        rho = rho_positions(rest, 57)
        assert rho.min() >= 1
        assert rho.max() <= 58
