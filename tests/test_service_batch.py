"""Tests for the batched query engine (repro.service.batch)."""

import numpy as np
import pytest

from repro.core import CostModel, HybridLSH, HybridSearcher, Strategy
from repro.exceptions import ConfigurationError
from repro.service import BatchQueryEngine


@pytest.fixture
def hybrid(gaussian_points) -> HybridLSH:
    return HybridLSH(
        gaussian_points,
        metric="l2",
        radius=1.2,
        num_tables=8,
        cost_model=CostModel.from_ratio(6.0),
        seed=3,
    )


def assert_results_identical(expected, actual):
    assert len(expected) == len(actual)
    for exp, act in zip(expected, actual):
        assert np.array_equal(exp.ids, act.ids)
        assert np.array_equal(exp.distances, act.distances)
        assert exp.stats.strategy == act.stats.strategy
        assert exp.stats.num_collisions == act.stats.num_collisions
        assert exp.stats.estimated_candidates == act.stats.estimated_candidates
        assert exp.stats.estimated_lsh_cost == act.stats.estimated_lsh_cost
        assert exp.stats.linear_cost == act.stats.linear_cost
        assert exp.stats.exact_candidates == act.stats.exact_candidates


class TestBatchEqualsSequential:
    def test_default_model(self, hybrid, gaussian_points):
        queries = gaussian_points[::9]
        engine = BatchQueryEngine(hybrid.searcher, radius=1.2)
        sequential = [hybrid.searcher.query(q, 1.2) for q in queries]
        assert_results_identical(sequential, engine.query_batch(queries))

    @pytest.mark.parametrize("alpha", [1e12, 1e-12])
    def test_forced_branches(self, l2_index, gaussian_points, alpha):
        """Extreme cost models push every query down one branch; both
        the grouped-linear and the vectorised-LSH path must match."""
        searcher = HybridSearcher(l2_index, CostModel(alpha=alpha, beta=1.0))
        queries = gaussian_points[:25]
        sequential = [searcher.query(q, 1.0) for q in queries]
        engine = BatchQueryEngine(searcher, radius=1.0)
        batched = engine.query_batch(queries)
        expected = Strategy.LINEAR if alpha > 1 else Strategy.LSH
        assert all(r.stats.strategy == expected for r in batched)
        assert_results_identical(sequential, batched)

    def test_mixed_batch_covers_both_strategies(self, hybrid, gaussian_points):
        """On the clustered fixture the default model should split; if it
        does, the batch path must reproduce the split exactly."""
        queries = gaussian_points
        engine = BatchQueryEngine(hybrid.searcher, radius=1.2)
        batched = engine.query_batch(queries)
        sequential = [hybrid.searcher.query(q, 1.2) for q in queries]
        assert_results_identical(sequential, batched)

    def test_scalar_dedup_engine_matches_vectorized(self, hybrid, gaussian_points):
        queries = gaussian_points[:20]
        vec = BatchQueryEngine(hybrid.searcher, radius=1.2, dedup="vectorized")
        scal = BatchQueryEngine(hybrid.searcher, radius=1.2, dedup="scalar")
        assert_results_identical(scal.query_batch(queries), vec.query_batch(queries))


class TestEngineSurface:
    def test_from_points_and_single_query(self, gaussian_points):
        engine = BatchQueryEngine.from_points(
            gaussian_points,
            metric="l2",
            radius=1.0,
            num_tables=6,
            cost_model=CostModel.from_ratio(6.0),
            seed=1,
        )
        result = engine.query(gaussian_points[11])
        assert 11 in result.ids
        assert engine.n == gaussian_points.shape[0]
        assert engine.dim == gaussian_points.shape[1]

    def test_radius_override_and_missing(self, hybrid, gaussian_points):
        engine = BatchQueryEngine(hybrid.searcher)  # no default radius
        with pytest.raises(ConfigurationError):
            engine.query(gaussian_points[0])
        assert engine.query(gaussian_points[0], radius=0.8).radius == 0.8

    def test_rejects_bad_dedup(self, hybrid):
        with pytest.raises(ConfigurationError):
            BatchQueryEngine(hybrid.searcher, dedup="nope")


class TestInsertThenBatchQuery:
    """Regression for the stale-``points`` hazard: a batch issued after
    an insert must search the refreshed matrix on every branch."""

    def test_linear_branch_sees_inserts(self, l2_index, gaussian_points, rng):
        searcher = HybridSearcher(l2_index, CostModel(alpha=1e12, beta=1.0))
        engine = BatchQueryEngine(searcher, radius=1.0)
        engine.query_batch(gaussian_points[:3])  # prime any cached state
        new_points = gaussian_points[:4] + 1e-4
        new_ids = engine.insert(new_points)
        results = engine.query_batch(new_points)
        for new_id, result in zip(new_ids, results):
            assert result.stats.strategy == Strategy.LINEAR
            assert new_id in result.ids

    def test_lsh_branch_sees_inserts(self, l2_index, gaussian_points):
        searcher = HybridSearcher(l2_index, CostModel(alpha=1e-12, beta=1.0))
        engine = BatchQueryEngine(searcher, radius=1.0)
        new_points = gaussian_points[10:13] + 1e-4
        new_ids = engine.insert(new_points)
        results = engine.query_batch(new_points)
        for new_id, result in zip(new_ids, results):
            assert result.stats.strategy == Strategy.LSH
            assert new_id in result.ids

    def test_batch_after_insert_matches_sequential(self, hybrid, gaussian_points):
        engine = BatchQueryEngine(hybrid.searcher, radius=1.2)
        engine.insert(gaussian_points[:6] + 2.5)
        queries = gaussian_points[::17]
        sequential = [hybrid.searcher.query(q, 1.2) for q in queries]
        assert_results_identical(sequential, engine.query_batch(queries))


class TestMultiProbeBatch:
    """Regression: the batched path must probe the same buckets as the
    single-query path on a multi-probe index."""

    @pytest.fixture
    def probed_index(self, gaussian_points):
        from repro.hashing import PStableLSH
        from repro.index import MultiProbeLSHIndex

        return MultiProbeLSHIndex(
            PStableLSH(dim=16, w=2.0, p=2, seed=7),
            k=4,
            num_tables=6,
            num_probes=2,
            seed=5,
        ).build(gaussian_points)

    def test_lookup_batch_includes_probe_buckets(self, probed_index, gaussian_points):
        queries = gaussian_points[:15]
        batched = probed_index.lookup_batch(queries)
        for query, lookup in zip(queries, batched):
            single = probed_index.lookup(query)
            assert lookup.keys == single.keys  # home + probes, same order
            assert lookup.num_collisions == single.num_collisions
            assert np.array_equal(
                probed_index.candidate_ids(lookup),
                probed_index.candidate_ids(single),
            )

    def test_engine_matches_sequential_on_multiprobe(self, probed_index, gaussian_points):
        searcher = HybridSearcher(probed_index, CostModel.from_ratio(6.0))
        queries = gaussian_points[::31]
        sequential = [searcher.query(q, 1.2) for q in queries]
        engine = BatchQueryEngine(searcher, radius=1.2)
        assert_results_identical(sequential, engine.query_batch(queries))


class TestMergedSketchesBatch:
    def test_bit_identical_to_single_merges(self, l2_index, gaussian_points):
        lookups = l2_index.lookup_batch(gaussian_points[:30])
        batched = l2_index.merged_sketches_batch(lookups)
        for lookup, sketch in zip(lookups, batched):
            single = l2_index.merged_sketch(lookup)
            assert np.array_equal(single.registers, sketch.registers)
            assert single.estimate() == sketch.estimate()
