"""Tests for the single hash table grouping logic."""

import numpy as np
import pytest

from repro.hashing.composite import encode_rows
from repro.index.table import HashTable
from repro.sketches import PrecomputedHllHashes


@pytest.fixture
def hashes():
    return PrecomputedHllHashes(100, p=5, seed=1)


class TestInsertHashed:
    def test_groups_by_row(self, hashes):
        table = HashTable(hll_precision=5, hll_seed=1)
        hash_matrix = np.array([[0, 0], [1, 1], [0, 0], [2, 2], [1, 1], [0, 0]])
        table.insert_hashed(hash_matrix, hashes)
        assert table.num_buckets == 3
        key_000 = encode_rows(np.array([[0, 0]]))[0]
        assert table.get(key_000).ids.tolist() == [0, 2, 5]

    def test_every_point_exactly_once(self, hashes):
        rng = np.random.default_rng(0)
        hash_matrix = rng.integers(-3, 3, size=(100, 3))
        table = HashTable(hll_precision=5, hll_seed=1)
        table.insert_hashed(hash_matrix, hashes)
        all_ids = np.concatenate([b.ids for b in table.buckets.values()])
        assert sorted(all_ids.tolist()) == list(range(100))

    def test_bucket_keys_match_rows(self, hashes):
        rng = np.random.default_rng(1)
        hash_matrix = rng.integers(0, 2, size=(50, 4))
        table = HashTable(hll_precision=5, hll_seed=1)
        table.insert_hashed(hash_matrix, hashes)
        for i in range(50):
            key = encode_rows(hash_matrix[i][None, :])[0]
            assert i in table.get(key).ids

    def test_missing_key_returns_none(self, hashes):
        table = HashTable()
        table.insert_hashed(np.array([[1]]), None)
        assert table.get(b"\x00" * 8) is None

    def test_bucket_sizes(self, hashes):
        table = HashTable(hll_precision=5, hll_seed=1)
        table.insert_hashed(np.array([[0], [0], [1]]), hashes)
        assert sorted(table.bucket_sizes().tolist()) == [1, 2]

    def test_sketchless_table(self):
        table = HashTable(with_sketches=False)
        table.insert_hashed(np.zeros((40, 2), dtype=np.int64), None)
        bucket = next(iter(table.buckets.values()))
        assert not bucket.has_sketch
        assert table.sketch_memory_bytes == 0

    def test_sketches_built_past_threshold(self, hashes):
        table = HashTable(hll_precision=5, hll_seed=1, lazy_threshold=10)
        table.insert_hashed(np.zeros((40, 2), dtype=np.int64), hashes)
        bucket = next(iter(table.buckets.values()))
        assert bucket.has_sketch

    def test_repr(self):
        table = HashTable()
        assert "HashTable" in repr(table)
