"""Tests for the linear-scan baseline."""

import numpy as np
import pytest

from repro.core import LinearScan, Strategy
from repro.exceptions import ConfigurationError, DimensionMismatchError


class TestLinearScan:
    def test_exactness(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]])
        scan = LinearScan(points, "l2")
        result = scan.query(np.array([0.0, 0.0]), radius=5.0)
        assert result.ids.tolist() == [0, 1]
        assert result.distances.tolist() == [0.0, 5.0]

    def test_empty_result(self):
        scan = LinearScan(np.ones((5, 2)), "l2")
        result = scan.query(np.array([100.0, 100.0]), radius=1.0)
        assert result.output_size == 0

    def test_all_within(self):
        scan = LinearScan(np.zeros((7, 3)), "l2")
        result = scan.query(np.zeros(3), radius=0.5)
        assert result.output_size == 7

    def test_strategy_label(self):
        scan = LinearScan(np.zeros((3, 2)), "l2")
        assert scan.query(np.zeros(2), 1.0).stats.strategy == Strategy.LINEAR

    def test_radius_boundary_inclusive(self):
        """f(x, q) <= r per Definition 1: boundary points are reported."""
        scan = LinearScan(np.array([[3.0, 4.0]]), "l2")
        assert scan.query(np.zeros(2), radius=5.0).output_size == 1

    def test_invalid_radius(self):
        scan = LinearScan(np.zeros((3, 2)), "l2")
        with pytest.raises(ConfigurationError):
            scan.query(np.zeros(2), radius=0.0)

    def test_dimension_mismatch(self):
        scan = LinearScan(np.zeros((3, 2)), "l2")
        with pytest.raises(DimensionMismatchError):
            scan.query(np.zeros(3), radius=1.0)

    def test_query_ids_shortcut(self):
        points = np.array([[0.0], [1.0], [10.0]])
        scan = LinearScan(points, "l1")
        assert scan.query_ids(np.array([0.0]), 2.0).tolist() == [0, 1]

    def test_recall_is_always_perfect(self, gaussian_points):
        scan = LinearScan(gaussian_points, "l2")
        q = gaussian_points[0]
        result = scan.query(q, radius=2.0)
        assert result.recall_against(result.ids) == 1.0

    @pytest.mark.parametrize("metric", ["l1", "l2", "cosine"])
    def test_metrics_supported(self, metric, gaussian_points):
        scan = LinearScan(gaussian_points, metric)
        radius = 2.0 if metric != "cosine" else 0.5
        result = scan.query(gaussian_points[0], radius)
        assert 0 in result.ids  # self at distance 0
