"""Shared fixtures: small deterministic datasets and indexes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import BitSamplingLSH, PStableLSH, SimHashLSH
from repro.index import LSHIndex


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def gaussian_points(rng) -> np.ndarray:
    """600 points in R^16: two tight clusters plus scattered noise."""
    cluster_a = rng.normal(loc=0.0, scale=0.3, size=(250, 16))
    cluster_b = rng.normal(loc=3.0, scale=0.3, size=(250, 16))
    noise = rng.uniform(-6.0, 6.0, size=(100, 16))
    return np.concatenate([cluster_a, cluster_b, noise])


@pytest.fixture
def binary_points(rng) -> np.ndarray:
    """400 binary vectors in {0,1}^32 clustered around two templates."""
    template_a = rng.integers(0, 2, size=32)
    template_b = rng.integers(0, 2, size=32)
    flips = rng.random(size=(400, 32)) < 0.08
    base = np.where(np.arange(400)[:, None] < 200, template_a, template_b)
    return (base ^ flips).astype(np.uint8)


@pytest.fixture
def l2_index(gaussian_points) -> LSHIndex:
    family = PStableLSH(dim=16, w=2.0, p=2, seed=7)
    return LSHIndex(family, k=4, num_tables=10, hll_precision=7, hll_seed=3).build(
        gaussian_points
    )


@pytest.fixture
def cosine_index(gaussian_points) -> LSHIndex:
    family = SimHashLSH(dim=16, seed=7)
    return LSHIndex(family, k=6, num_tables=10, hll_precision=7, hll_seed=3).build(
        gaussian_points
    )


@pytest.fixture
def hamming_index(binary_points) -> LSHIndex:
    family = BitSamplingLSH(dim=32, seed=7)
    return LSHIndex(family, k=8, num_tables=10, hll_precision=6, hll_seed=3).build(
        binary_points
    )
