"""Tests for hybrid search (Algorithm 2) and the HybridLSH facade."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    HybridLSH,
    HybridSearcher,
    LinearScan,
    LSHSearch,
    Strategy,
)
from repro.exceptions import ConfigurationError, EmptyIndexError
from repro.hashing import PStableLSH
from repro.index import LSHIndex


@pytest.fixture
def hybrid(l2_index):
    return HybridSearcher(l2_index, CostModel.from_ratio(6.0))


class TestConstruction:
    def test_requires_built_index(self):
        index = LSHIndex(PStableLSH(4, w=1.0, p=2, seed=0), k=2, num_tables=2)
        with pytest.raises(EmptyIndexError):
            HybridSearcher(index, CostModel.from_ratio(1.0))

    def test_requires_sketches(self, gaussian_points):
        index = LSHIndex(
            PStableLSH(16, w=2.0, p=2, seed=0), k=2, num_tables=2, with_sketches=False
        ).build(gaussian_points)
        with pytest.raises(ConfigurationError):
            HybridSearcher(index, CostModel.from_ratio(1.0))


class TestDecision:
    def test_stats_record_both_costs(self, hybrid, gaussian_points):
        result = hybrid.query(gaussian_points[0], radius=1.0)
        stats = result.stats
        assert stats.estimated_lsh_cost > 0
        assert stats.linear_cost == hybrid.cost_model.linear_cost(hybrid.index.n)
        assert not np.isnan(stats.estimated_candidates)

    def test_dispatch_matches_cost_comparison(self, hybrid, gaussian_points):
        """The strategy recorded must agree with the recorded costs."""
        for i in range(0, 60, 7):
            stats = hybrid.query(gaussian_points[i], radius=1.5).stats
            if stats.estimated_lsh_cost < stats.linear_cost:
                assert stats.strategy == Strategy.LSH
            else:
                assert stats.strategy == Strategy.LINEAR

    def test_forced_linear_by_extreme_model(self, l2_index, gaussian_points):
        """With alpha astronomically high every query goes linear."""
        searcher = HybridSearcher(l2_index, CostModel(alpha=1e12, beta=1.0))
        result = searcher.query(gaussian_points[0], radius=1.0)
        assert result.stats.strategy == Strategy.LINEAR

    def test_forced_lsh_by_extreme_model(self, l2_index, gaussian_points):
        """With beta astronomically high (linear cost huge) LSH always wins."""
        searcher = HybridSearcher(l2_index, CostModel(alpha=1e-12, beta=1.0))
        result = searcher.query(gaussian_points[0], radius=1.0)
        assert result.stats.strategy == Strategy.LSH

    def test_decide_matches_query(self, hybrid, gaussian_points):
        for i in (0, 13, 57):
            decided = hybrid.decide(gaussian_points[i])
            ran = hybrid.query(gaussian_points[i], radius=1.5).stats.strategy
            assert decided == ran


class TestAnswers:
    def test_linear_branch_is_exact(self, l2_index, gaussian_points):
        searcher = HybridSearcher(l2_index, CostModel(alpha=1e12, beta=1.0))
        scan = LinearScan(gaussian_points, "l2")
        q = gaussian_points[4]
        hybrid_ids = searcher.query(q, radius=1.5).ids
        exact_ids = scan.query(q, radius=1.5).ids
        assert np.array_equal(hybrid_ids, exact_ids)

    def test_lsh_branch_matches_pure_lsh(self, l2_index, gaussian_points):
        searcher = HybridSearcher(l2_index, CostModel(alpha=1e-12, beta=1.0))
        pure = LSHSearch(l2_index)
        q = gaussian_points[4]
        assert np.array_equal(
            searcher.query(q, radius=1.5).ids, pure.query(q, radius=1.5).ids
        )

    def test_no_false_positives_either_branch(self, hybrid, gaussian_points):
        for i in (0, 30, 55):
            q = gaussian_points[i]
            result = hybrid.query(q, radius=1.2)
            dists = np.linalg.norm(gaussian_points[result.ids] - q, axis=1)
            assert np.all(dists <= 1.2)


class TestHybridLSHFacade:
    def test_end_to_end_l2(self, gaussian_points):
        searcher = HybridLSH(
            gaussian_points,
            metric="l2",
            radius=1.0,
            num_tables=10,
            cost_model=CostModel.from_ratio(6.0),
            seed=3,
        )
        result = searcher.query(gaussian_points[0])
        assert 0 in result.ids
        assert result.radius == 1.0

    def test_query_batch(self, gaussian_points):
        searcher = HybridLSH(
            gaussian_points,
            metric="l2",
            radius=1.0,
            num_tables=6,
            cost_model=CostModel.from_ratio(6.0),
            seed=3,
        )
        results = searcher.query_batch(gaussian_points[:5])
        assert len(results) == 5

    def test_radius_override(self, gaussian_points):
        searcher = HybridLSH(
            gaussian_points,
            metric="l2",
            radius=1.0,
            num_tables=6,
            cost_model=CostModel.from_ratio(6.0),
            seed=3,
        )
        assert searcher.query(gaussian_points[0], radius=0.4).radius == 0.4

    def test_calibration_path(self, gaussian_points):
        """cost_model=None triggers timing calibration and still works."""
        searcher = HybridLSH(
            gaussian_points[:200],
            metric="l2",
            radius=1.0,
            num_tables=4,
            seed=3,
        )
        assert searcher.cost_model.beta_over_alpha > 0
        result = searcher.query(gaussian_points[0])
        assert result.output_size >= 1

    def test_binary_facade(self, binary_points):
        searcher = HybridLSH(
            binary_points,
            metric="hamming",
            radius=4.0,
            num_tables=10,
            cost_model=CostModel.from_ratio(1.0),
            seed=2,
        )
        result = searcher.query(binary_points[0])
        assert 0 in result.ids

    def test_repr(self, gaussian_points):
        searcher = HybridLSH(
            gaussian_points,
            metric="l2",
            radius=1.0,
            num_tables=4,
            cost_model=CostModel.from_ratio(6.0),
            seed=3,
        )
        assert "HybridLSH" in repr(searcher)
