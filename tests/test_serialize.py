"""Tests for index persistence (save_index / load_index)."""

import numpy as np
import pytest

from repro.core import CostModel, HybridSearcher, LSHSearch
from repro.exceptions import ConfigurationError
from repro.hashing import BitSamplingLSH, MinHashLSH, PStableLSH, SimHashLSH
from repro.index import LSHIndex
from repro.index.serialize import load_index, save_index


def roundtrip(index, tmp_path):
    path = str(tmp_path / "index.npz")
    save_index(index, path)
    return load_index(path)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "family_factory",
        [
            lambda: PStableLSH(16, w=2.0, p=2, seed=5),
            lambda: PStableLSH(16, w=3.0, p=1, seed=5),
            lambda: SimHashLSH(16, seed=5),
        ],
    )
    def test_real_valued_families(self, family_factory, gaussian_points, tmp_path):
        index = LSHIndex(family_factory(), k=4, num_tables=6, hll_seed=2).build(
            gaussian_points
        )
        loaded = roundtrip(index, tmp_path)
        for i in (0, 17, 91):
            q = gaussian_points[i]
            a = index.lookup(q)
            b = loaded.lookup(q)
            assert a.keys == b.keys
            assert np.array_equal(index.candidate_ids(a), loaded.candidate_ids(b))

    def test_bit_sampling(self, binary_points, tmp_path):
        index = LSHIndex(BitSamplingLSH(32, seed=1), k=8, num_tables=5).build(
            binary_points
        )
        loaded = roundtrip(index, tmp_path)
        q = binary_points[3]
        assert np.array_equal(
            index.candidate_ids(index.lookup(q)), loaded.candidate_ids(loaded.lookup(q))
        )

    def test_minhash(self, rng, tmp_path):
        points = (rng.random((100, 24)) < 0.3).astype(np.uint8)
        index = LSHIndex(MinHashLSH(24, seed=1), k=2, num_tables=4).build(points)
        loaded = roundtrip(index, tmp_path)
        q = points[7]
        assert index.lookup(q).keys == loaded.lookup(q).keys

    def test_sketches_rebuilt_identically(self, gaussian_points, tmp_path):
        index = LSHIndex(
            PStableLSH(16, w=2.0, p=2, seed=5), k=4, num_tables=6, hll_seed=9
        ).build(gaussian_points)
        loaded = roundtrip(index, tmp_path)
        q = gaussian_points[0]
        original = index.merged_sketch(index.lookup(q))
        restored = loaded.merged_sketch(loaded.lookup(q))
        assert original == restored

    def test_search_results_identical(self, gaussian_points, tmp_path):
        index = LSHIndex(PStableLSH(16, w=2.0, p=2, seed=5), k=4, num_tables=6).build(
            gaussian_points
        )
        loaded = roundtrip(index, tmp_path)
        a = LSHSearch(index).query(gaussian_points[2], 1.5)
        b = LSHSearch(loaded).query(gaussian_points[2], 1.5)
        assert np.array_equal(a.ids, b.ids)
        assert np.allclose(a.distances, b.distances)

    def test_hybrid_works_on_loaded_index(self, gaussian_points, tmp_path):
        index = LSHIndex(PStableLSH(16, w=2.0, p=2, seed=5), k=4, num_tables=6).build(
            gaussian_points
        )
        loaded = roundtrip(index, tmp_path)
        hybrid = HybridSearcher(loaded, CostModel.from_ratio(6.0))
        result = hybrid.query(gaussian_points[0], radius=1.0)
        assert 0 in result.ids

    def test_config_preserved(self, gaussian_points, tmp_path):
        index = LSHIndex(
            PStableLSH(16, w=2.5, p=1, seed=3),
            k=3,
            num_tables=4,
            hll_precision=6,
            hll_seed=11,
            lazy_threshold=17,
            dedup="vectorized",
        ).build(gaussian_points)
        loaded = roundtrip(index, tmp_path)
        assert loaded.k == 3
        assert loaded.num_tables == 4
        assert loaded.hll_precision == 6
        assert loaded.hll_seed == 11
        assert loaded.lazy_threshold == 17
        assert loaded.dedup == "vectorized"
        assert loaded.family.p == 1
        assert loaded.family.w == 2.5


class TestErrors:
    def test_unbuilt_index_rejected(self, tmp_path):
        index = LSHIndex(SimHashLSH(8, seed=0), k=2, num_tables=2)
        with pytest.raises(ConfigurationError):
            save_index(index, str(tmp_path / "x.npz"))

    def test_generic_family_rejected(self, gaussian_points, tmp_path):
        from repro.hashing.base import LSHFamily
        from repro.hashing.composite import CompositeHash

        class CustomFamily(LSHFamily):
            metric_name = "l2"

            def sample(self, k):
                coords = self._rng.integers(0, self.dim, size=k)

                def kernel(points):
                    return np.floor(points[:, coords]).astype(np.int64)

                return CompositeHash(kernel, k=k, dim=self.dim)

            def collision_probability(self, distance):
                return max(0.0, 1.0 - distance)

        index = LSHIndex(CustomFamily(16, seed=0), k=2, num_tables=2).build(
            gaussian_points
        )
        with pytest.raises(ConfigurationError):
            save_index(index, str(tmp_path / "x.npz"))

    def test_sketchless_roundtrip(self, gaussian_points, tmp_path):
        index = LSHIndex(
            SimHashLSH(16, seed=0), k=3, num_tables=3, with_sketches=False
        ).build(gaussian_points)
        loaded = roundtrip(index, tmp_path)
        assert not loaded.with_sketches
        q = gaussian_points[1]
        assert np.array_equal(
            index.candidate_ids(index.lookup(q)), loaded.candidate_ids(loaded.lookup(q))
        )
