"""Process-pool serving: bit-identity, crash recovery, O(mmap) startup.

The :class:`~repro.service.workers.WorkerPool` must be a drop-in
replacement for the thread fan-out: built from the same spec and seed,
``execution="processes"`` and ``execution="threads"`` answer every
radius / top-k / batch / insert request with byte-identical ids and
distances.  On top of that it carries operational guarantees the thread
path does not need: workers are respawned from the saved artifact after
a crash (with their overflow inserts replayed), and opening the pool
never rebuilds an index — startup is bounded by mmap'ing the saved
arrays.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.api import Index, IndexSpec, QuerySpec
from repro.exceptions import ConfigurationError
from repro.service.sharded import ShardedHybridIndex, default_fanout_width
from repro.service.workers import WorkerPool

N, DIM, SHARDS = 700, 12, 3


def _spec(**overrides):
    base = dict(
        metric="l2",
        radius=1.2,
        num_tables=8,
        num_shards=SHARDS,
        layout="frozen",
        cost_ratio=6.0,
        seed=7,
    )
    base.update(overrides)
    return IndexSpec(**base)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    return rng.normal(size=(N, DIM))


@pytest.fixture(scope="module")
def queries(points):
    rng = np.random.default_rng(1)
    return np.concatenate([points[:6], rng.normal(size=(6, DIM))])


@pytest.fixture(scope="module")
def thread_index(points):
    index = Index.build(points, _spec())
    yield index
    index.close()


@pytest.fixture(scope="module")
def process_index(points):
    index = Index.build(points, _spec(execution="processes"), num_workers=2)
    yield index
    index.close()


def assert_results_equal(a, b):
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.distances, b.distances)


class TestBitIdentity:
    def test_backend_is_a_worker_pool(self, process_index):
        assert isinstance(process_index.engine, WorkerPool)
        assert process_index.execution == "processes"
        assert process_index.num_shards == SHARDS

    def test_radius_batch_matches_threads(self, thread_index, process_index, queries):
        for ra, rb in zip(
            thread_index.query_batch(queries), process_index.query_batch(queries)
        ):
            assert_results_equal(ra, rb)

    def test_single_query_and_explicit_radius(self, thread_index, process_index, queries):
        for q in queries[:4]:
            assert_results_equal(
                thread_index.query(QuerySpec(q, radius=0.9)),
                process_index.query(QuerySpec(q, radius=0.9)),
            )

    def test_topk_matches_threads_and_is_exact(self, thread_index, process_index, queries):
        for ra, rb in zip(
            thread_index.query(QuerySpec(queries, k=5)),
            process_index.query(QuerySpec(queries, k=5)),
        ):
            assert_results_equal(ra, rb)

    def test_stats_expose_pool_width(self, process_index, thread_index):
        assert process_index.stats.pool_workers == 2
        assert process_index.stats.as_dict()["pool_workers"] == 2
        assert thread_index.stats.pool_workers == default_fanout_width(SHARDS)


class TestInserts:
    def test_insert_routing_matches_threads(self, points, queries):
        threads = Index.build(points, _spec())
        procs = Index.build(points, _spec(execution="processes"), num_workers=2)
        rng = np.random.default_rng(5)
        try:
            for batch in (rng.normal(size=(4, DIM)), rng.normal(size=(7, DIM))):
                ids_a, ids_b = threads.insert(batch), procs.insert(batch)
                assert np.array_equal(ids_a, ids_b)
                probes = np.concatenate([batch[:2], queries[:4]])
                for ra, rb in zip(
                    threads.query_batch(probes), procs.query_batch(probes)
                ):
                    assert_results_equal(ra, rb)
            assert procs.n == threads.n == N + 11
            # Exact top-k sees the inserted points too.
            for ra, rb in zip(
                threads.query(QuerySpec(probes, k=4)),
                procs.query(QuerySpec(probes, k=4)),
            ):
                assert_results_equal(ra, rb)
        finally:
            threads.close(), procs.close()


class TestCrashRecovery:
    def test_respawn_after_kill_preserves_answers(self, points, queries):
        procs = Index.build(points, _spec(execution="processes"), num_workers=2)
        try:
            before = procs.query_batch(queries)
            pool = procs.engine
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            time.sleep(0.05)
            after = procs.query_batch(queries)
            for ra, rb in zip(before, after):
                assert_results_equal(ra, rb)
        finally:
            procs.close()

    def test_inserts_concurrent_with_respawns_stay_consistent(self, points, queries):
        """Insert commits racing a crash-triggered replay lose nothing.

        A query thread that hits a dead worker respawns it and replays
        the insert log while the (single) writer thread may be
        mid-commit; the route lock makes the commit atomic with respect
        to the replay snapshot.  Afterwards the pool must answer
        exactly like a thread backend that received the same batches.
        """
        import threading

        threads = Index.build(points, _spec())
        procs = Index.build(points, _spec(execution="processes"), num_workers=2)
        rng = np.random.default_rng(23)
        batches = [rng.normal(size=(3, DIM)) for _ in range(6)]
        errors = []

        def writer():
            try:
                for batch in batches:
                    procs.insert(batch)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        try:
            pool = procs.engine
            thread = threading.Thread(target=writer)
            thread.start()
            for _ in range(3):
                os.kill(pool.worker_pids()[0], signal.SIGKILL)
                time.sleep(0.01)
                procs.query_batch(queries[:2])  # triggers respawn + replay
            thread.join()
            assert not errors
            for batch in batches:
                threads.insert(batch)
            probes = np.concatenate([batches[0], batches[-1], queries[:4]])
            for ra, rb in zip(
                threads.query_batch(probes), procs.query_batch(probes)
            ):
                assert_results_equal(ra, rb)
            assert procs.n == threads.n
        finally:
            threads.close(), procs.close()

    def test_respawn_replays_overflow_inserts(self, points, queries):
        threads = Index.build(points, _spec())
        procs = Index.build(points, _spec(execution="processes"), num_workers=2)
        rng = np.random.default_rng(9)
        new = rng.normal(size=(6, DIM))
        try:
            threads.insert(new), procs.insert(new)
            pool = procs.engine
            for pid in list(pool.worker_pids()):
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.05)
            probes = np.concatenate([new[:3], queries[:3]])
            for ra, rb in zip(
                threads.query_batch(probes), procs.query_batch(probes)
            ):
                assert_results_equal(ra, rb)
        finally:
            threads.close(), procs.close()


class TestPersistence:
    def test_save_reopen_roundtrip_with_inserts(self, points, queries, tmp_path):
        procs = Index.build(points, _spec(execution="processes"), num_workers=2)
        rng = np.random.default_rng(11)
        procs.insert(rng.normal(size=(5, DIM)))
        path = str(tmp_path / "pool-saved")
        procs.save(path)
        reopened = Index.open(path)
        try:
            assert isinstance(reopened.engine, WorkerPool)
            assert reopened.n == procs.n
            for ra, rb in zip(
                procs.query_batch(queries), reopened.query_batch(queries)
            ):
                assert_results_equal(ra, rb)
        finally:
            procs.close(), reopened.close()

    def test_threads_artifact_opens_as_pool_when_spec_says_processes(
        self, points, queries, tmp_path
    ):
        # The artifact layout is identical; only the spec's execution
        # field decides which backend serves it.
        threads = Index.build(points, _spec(execution="processes"), num_workers=1)
        try:
            assert isinstance(threads.engine, WorkerPool)
            assert threads.engine.num_workers == 1
        finally:
            threads.close()

    def test_single_shard_processes_index(self, points, queries):
        single = Index.build(
            points, _spec(num_shards=1, execution="processes"), num_workers=1
        )
        reference = Index.build(points, _spec(num_shards=1))
        try:
            for ra, rb in zip(
                reference.query_batch(queries), single.query_batch(queries)
            ):
                assert_results_equal(ra, rb)
        finally:
            single.close(), reference.close()

    def test_checkpoint_drops_replay_log_and_survives_crash(self, points, queries):
        procs = Index.build(points, _spec(execution="processes"), num_workers=2)
        rng = np.random.default_rng(13)
        try:
            procs.insert(rng.normal(size=(6, DIM)))
            pool = procs.engine
            assert any(pool._insert_log)
            before = procs.query_batch(queries)
            pool.checkpoint()
            assert not any(pool._insert_log)  # artifact is canonical again
            # A crash after the checkpoint recovers from disk alone.
            for pid in list(pool.worker_pids()):
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.05)
            after = procs.query_batch(queries)
            for ra, rb in zip(before, after):
                assert_results_equal(ra, rb)
            assert procs.n == N + 6
        finally:
            procs.close()

    def test_build_rejects_workers_arg_on_thread_specs(self, points):
        with pytest.raises(ConfigurationError):
            Index.build(points, _spec(), num_workers=2)

    def test_open_rejects_workers_flag_on_thread_artifacts(self, points, tmp_path):
        index = Index.build(points, _spec())
        path = str(tmp_path / "threads-saved")
        index.save(path)
        index.close()
        with pytest.raises(ConfigurationError):
            Index.open(path, num_workers=2)

    def test_pool_rejects_dict_layout_artifacts(self, points, tmp_path):
        index = Index.build(points, _spec(layout="dict"))
        path = str(tmp_path / "dict-saved")
        index.save(path)
        index.close()
        with pytest.raises(ConfigurationError):
            WorkerPool(path)


class TestStartupIsMmapBound:
    def test_pool_open_never_rebuilds(self, tmp_path):
        """Opening K workers over a saved index must be far cheaper than
        building it — the workers only mmap the saved arrays."""
        rng = np.random.default_rng(2)
        big = rng.normal(size=(4000, 16))
        spec = IndexSpec(
            metric="l2", radius=1.5, num_tables=20, num_shards=2,
            layout="frozen", cost_ratio=6.0, seed=3,
        )
        started = time.perf_counter()
        index = Index.build(big, spec)
        build_seconds = time.perf_counter() - started
        path = str(tmp_path / "big")
        index.save(path)
        index.close()
        started = time.perf_counter()
        pool = WorkerPool(path, num_workers=2)
        open_seconds = time.perf_counter() - started
        try:
            assert pool.n == 4000
        finally:
            pool.close()
        assert open_seconds < max(0.5 * build_seconds, 0.05), (
            open_seconds,
            build_seconds,
        )


class TestDefaults:
    def test_sharded_thread_width_respects_cpu_count(self, points):
        sharded = ShardedHybridIndex(
            points, metric="l2", radius=1.2, num_shards=SHARDS,
            num_tables=6, seed=1,
        )
        try:
            assert sharded.max_workers == min(SHARDS, os.cpu_count() or 1)
        finally:
            sharded.close()

    def test_pool_width_defaults_and_clamps(self, points, tmp_path):
        index = Index.build(points, _spec(execution="processes"))
        try:
            pool = index.engine
            assert pool.num_workers == min(SHARDS, os.cpu_count() or 1)
        finally:
            index.close()


class TestPoolTelemetry:
    def test_worker_stats_op_reports_served_queries(self, points, queries):
        from repro.service.stats import ServiceStats

        procs = Index.build(points, _spec(execution="processes"), num_workers=2)
        try:
            procs.query_batch(queries)
            procs.query(QuerySpec(queries, k=3))
            per_worker = procs.engine.worker_stats()
            assert len(per_worker) == 2
            aggregate = ServiceStats()
            for doc in per_worker:
                aggregate.merge(ServiceStats.from_dict(doc))
            # Per-worker stats describe each worker's own workload, and
            # every worker evaluates every query against its shards: the
            # pooled total is num_workers x (radius batch + top-k batch).
            assert aggregate.queries_served == 2 * 2 * len(queries)
            assert aggregate.latency.count == aggregate.queries_served
            # Workers count strategies per owned shard, so the tally
            # covers the radius batch across all shards.
            assert sum(aggregate.strategy_counts.values()) == len(queries) * SHARDS
            # Every worker shipped result arrays back over its pipe.
            assert all(doc["bytes_shipped"] > 0 for doc in per_worker)
            # Worker-local gauges (frozen overflow state) ride along.
            assert all("overflow_points" in doc["gauges"] for doc in per_worker)
        finally:
            procs.close()

    def test_parent_counts_bytes_and_respawns(self, points, queries):
        procs = Index.build(points, _spec(execution="processes"), num_workers=2)
        try:
            pool = procs.engine
            assert pool.respawns == 0
            procs.query_batch(queries)
            assert pool.bytes_shipped > 0
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            time.sleep(0.05)
            procs.query_batch(queries)
            assert pool.respawns == 1
            snapshot = procs.stats_snapshot()
            assert snapshot["worker_respawns"] == 1
            assert snapshot["bytes_shipped"] == pool.bytes_shipped
        finally:
            procs.close()

    def test_stats_snapshot_embeds_worker_aggregate(self, points, queries):
        procs = Index.build(points, _spec(execution="processes"), num_workers=2)
        try:
            procs.query_batch(queries)
            snapshot = procs.stats_snapshot()
            workers = snapshot["workers"]
            assert len(workers["per_worker"]) == 2
            # Both workers evaluated the batch against their own shards;
            # the front-end's top-level counter still says len(queries).
            assert workers["aggregate"]["queries_served"] == 2 * len(queries)
            assert snapshot["queries_served"] == len(queries)
            # The snapshot must survive the wire format the stream
            # protocol and the CLI reporter use.
            import json

            json.loads(json.dumps(snapshot))
        finally:
            procs.close()

    def test_traced_pool_queries_attribute_ipc_time(self, points, queries):
        procs = Index.build(points, _spec(execution="processes"), num_workers=2)
        try:
            procs.enable_tracing(True)
            before = procs.query_batch(queries)
            stats = procs.stats
            assert stats.stage_seconds.get("ipc", 0.0) > 0.0
            assert "merge" in stats.stage_seconds
            procs.enable_tracing(False)
            after = procs.query_batch(queries)
            for ra, rb in zip(before, after):
                assert_results_equal(ra, rb)
        finally:
            procs.close()
