"""The legacy top-level constructors keep working — and warn exactly once.

``repro.HybridLSH`` / ``repro.QueryService`` (and friends) are thin
shims over the real implementation classes: fully substitutable
(``isinstance`` sees the originals), bit-identical in behavior, but
emitting one :class:`DeprecationWarning` per process that points at the
spec-driven ``repro.Index`` API.  The implementation classes imported
from their own modules stay silent — they are the facade's engines.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.api.deprecations import _WARNED
from repro.core import CostModel


@pytest.fixture
def points():
    return np.random.default_rng(0).normal(size=(300, 8))


@pytest.fixture(autouse=True)
def fresh_warning_state():
    """Each test sees the once-per-process guard in its pristine state."""
    saved = set(_WARNED)
    _WARNED.clear()
    yield
    _WARNED.clear()
    _WARNED.update(saved)


def _legacy_hybrid(points):
    return repro.HybridLSH(
        points, metric="l2", radius=1.0, num_tables=6,
        cost_model=CostModel.from_ratio(6.0), seed=1,
    )


class TestHybridLSHShim:
    def test_still_works_and_warns_exactly_once(self, points):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = _legacy_hybrid(points)
            second = _legacy_hybrid(points)  # the second construction is silent
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "HybridLSH" in str(deprecations[0].message)
        assert "repro.Index" in str(deprecations[0].message)
        result = first.query(points[0])
        assert 0 in result.ids
        assert np.array_equal(result.ids, second.query(points[0]).ids)

    def test_shim_is_substitutable(self, points):
        from repro.core.hybrid import HybridLSH as RealHybridLSH

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = _legacy_hybrid(points)
        assert isinstance(shim, RealHybridLSH)

    def test_real_class_does_not_warn(self, points):
        from repro.core.hybrid import HybridLSH as RealHybridLSH

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            RealHybridLSH(
                points, metric="l2", radius=1.0, num_tables=6,
                cost_model=CostModel.from_ratio(6.0), seed=1,
            )
        assert not [w for w in caught if w.category is DeprecationWarning]


class TestQueryServiceShim:
    def test_still_works_and_warns_exactly_once(self, points):
        from repro.service import BatchQueryEngine

        engine = BatchQueryEngine.from_points(
            points, metric="l2", radius=1.0, num_tables=6,
            cost_model=CostModel.from_ratio(6.0), seed=1,
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            service = repro.QueryService(engine)
            repro.QueryService(engine)  # silent the second time
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "QueryService" in str(deprecations[0].message)
        result = service.query(points[0])
        assert 0 in result.ids
        assert service.stats.queries_served == 1

    def test_real_class_does_not_warn(self, points):
        from repro.service import BatchQueryEngine
        from repro.service.service import QueryService as RealQueryService

        engine = BatchQueryEngine.from_points(
            points, metric="l2", radius=1.0, num_tables=6,
            cost_model=CostModel.from_ratio(6.0), seed=1,
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            RealQueryService(engine)
        assert not [w for w in caught if w.category is DeprecationWarning]


class TestOtherFrontDoors:
    @pytest.mark.parametrize("name", ["BatchQueryEngine", "ShardedHybridIndex"])
    def test_each_warns_once_per_process(self, name, points):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            if name == "BatchQueryEngine":
                repro.BatchQueryEngine.from_points(
                    points, metric="l2", radius=1.0, num_tables=4,
                    cost_model=CostModel.from_ratio(6.0), seed=1,
                )
            else:
                repro.ShardedHybridIndex(
                    points, metric="l2", radius=1.0, num_shards=2,
                    num_tables=4, cost_model=CostModel.from_ratio(6.0), seed=1,
                )
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert name in str(deprecations[0].message)
