"""Tests for IndexSpec / QuerySpec: validation and JSON round-trips.

The Hypothesis property at the bottom is the load-bearing one: any
valid spec must survive ``IndexSpec.from_dict(spec.to_dict()) == spec``
bit for bit, because saved indexes, the CLI and the wire protocol all
move specs as JSON documents.
"""

import json

import numpy as np
import pytest

from repro.api import IndexSpec, QuerySpec
from repro.exceptions import ConfigurationError


class TestIndexSpecValidation:
    def test_defaults_resolve(self):
        spec = IndexSpec(metric="l2", radius=2.0)
        assert spec.num_tables == 50
        assert spec.delta == 0.1
        assert spec.estimator == "hll"
        assert spec.num_shards == 1

    def test_metric_canonicalised(self):
        assert IndexSpec(metric="euclidean", radius=1.0).metric == "l2"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"radius": 0.0},
            {"radius": -2.0},
            {"num_tables": 0},
            {"delta": 0.0},
            {"delta": 1.5},
            {"k": -1},
            {"hash_family": "no-such-family"},
            {"estimator": "no-such-estimator"},
            {"num_shards": 0},
            {"cache_size": -1},
            {"cache_quantum": -1e-9},
            {"dedup": "bogus"},
            {"seed": "zero"},
            {"seed": 1.5},
            {"family_params": "w=2"},
            {"execution": "fibers"},
            # a worker pool serves mmap'd frozen shards; the mutable
            # dict layout has no zero-copy artifact to hand it
            {"execution": "processes", "layout": "dict"},
            {"execution": "processes"},  # default layout is "dict"
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        kwargs = {"metric": "l2", "radius": 1.0, **overrides}
        with pytest.raises((ConfigurationError, KeyError)):
            IndexSpec(**kwargs)

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            IndexSpec(metric="chebyshev", radius=1.0)

    def test_immutability(self):
        spec = IndexSpec(metric="l2", radius=1.0)
        with pytest.raises(AttributeError):
            spec.radius = 2.0

    def test_with_overrides_revalidates(self):
        spec = IndexSpec(metric="l2", radius=1.0)
        assert spec.with_overrides(num_shards=4).num_shards == 4
        with pytest.raises(ConfigurationError):
            spec.with_overrides(num_shards=0)


class TestIndexSpecRoundTrip:
    def test_json_round_trip(self):
        spec = IndexSpec(
            metric="cosine", radius=0.2, num_tables=12, delta=0.05,
            hll_precision=6, cost_ratio=10.0, num_shards=3,
            cache_size=128, seed=7,
        )
        doc = json.loads(json.dumps(spec.to_dict()))
        assert IndexSpec.from_dict(doc) == spec

    def test_execution_round_trips_and_defaults_to_threads(self):
        assert IndexSpec(metric="l2", radius=1.0).execution == "threads"
        spec = IndexSpec(
            metric="l2", radius=1.0, num_shards=4,
            layout="frozen", execution="processes",
        )
        doc = json.loads(json.dumps(spec.to_dict()))
        assert IndexSpec.from_dict(doc) == spec
        assert IndexSpec.from_dict(doc).execution == "processes"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexSpec.from_dict({"metric": "l2", "radius": 1.0, "tabels": 50})

    def test_missing_required_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexSpec.from_dict({"metric": "l2"})

    def test_unsupported_version_rejected(self):
        doc = IndexSpec(metric="l2", radius=1.0).to_dict()
        doc["spec_version"] = 99
        with pytest.raises(ConfigurationError):
            IndexSpec.from_dict(doc)


class TestQuerySpec:
    def test_single_vector_normalised(self):
        spec = QuerySpec([1.0, 2.0, 3.0])
        assert spec.queries.shape == (1, 3)
        assert spec.single is True
        assert spec.mode == "radius"

    def test_matrix_stays_batch(self):
        spec = QuerySpec(np.zeros((4, 3)), radius=0.5)
        assert spec.queries.shape == (4, 3)
        assert spec.single is False

    def test_topk_mode(self):
        assert QuerySpec([0.0, 1.0], k=5).mode == "topk"

    def test_radius_and_k_exclusive(self):
        with pytest.raises(ConfigurationError):
            QuerySpec([0.0, 1.0], radius=1.0, k=5)

    @pytest.mark.parametrize("bad", [{"radius": -1.0}, {"k": 0}])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            QuerySpec([0.0, 1.0], **bad)

    def test_three_dimensional_input_rejected(self):
        with pytest.raises(ConfigurationError):
            QuerySpec(np.zeros((2, 2, 2)))

    def test_json_round_trip(self):
        spec = QuerySpec(np.arange(6.0).reshape(2, 3), radius=0.75)
        doc = json.loads(json.dumps(spec.to_dict()))
        assert QuerySpec.from_dict(doc) == spec

    def test_topk_round_trip(self):
        spec = QuerySpec([1.0, 2.0], k=4)
        assert QuerySpec.from_dict(spec.to_dict()) == spec


# ----------------------------------------------------------------------
# Property: to_dict/from_dict is the identity on valid specs
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis"
)
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@st.composite
def index_specs(draw):
    metric = draw(st.sampled_from(["l2", "l1", "cosine", "hamming", "jaccard"]))
    layout = draw(st.sampled_from(["dict", "frozen"]))
    execution = (
        draw(st.sampled_from(["threads", "processes"]))
        if layout == "frozen"
        else "threads"
    )
    return IndexSpec(
        metric=metric,
        layout=layout,
        execution=execution,
        radius=draw(st.floats(1e-3, 1e3)),
        num_tables=draw(st.integers(1, 200)),
        delta=draw(st.floats(0.01, 0.99)),
        k=draw(st.one_of(st.none(), st.integers(1, 32))),
        hll_precision=draw(st.integers(4, 12)),
        hll_seed=draw(st.integers(0, 2**31)),
        lazy_threshold=draw(st.one_of(st.none(), st.integers(0, 512))),
        estimator=draw(st.sampled_from(["hll", "kmv", "exact"])),
        cost_ratio=draw(st.one_of(st.none(), st.floats(0.1, 100.0))),
        num_shards=draw(st.integers(1, 16)),
        cache_size=draw(st.integers(0, 4096)),
        cache_quantum=draw(st.floats(0.0, 1.0)),
        dedup=draw(st.sampled_from(["scalar", "vectorized"])),
        seed=draw(st.one_of(st.none(), st.integers(0, 2**31))),
        family_params=draw(
            st.one_of(
                st.none(),
                st.dictionaries(
                    st.sampled_from(["w", "p"]), st.floats(0.1, 10.0), max_size=2
                ),
            )
        ),
    )


@settings(max_examples=200, deadline=None)
@given(spec=index_specs())
def test_spec_dict_round_trip_is_identity(spec):
    assert IndexSpec.from_dict(spec.to_dict()) == spec


@settings(max_examples=100, deadline=None)
@given(spec=index_specs())
def test_spec_json_round_trip_is_identity(spec):
    assert IndexSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
