"""Tests for the L-table LSHIndex (Algorithm 1 + query primitives)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError, EmptyIndexError
from repro.hashing import PStableLSH, SimHashLSH
from repro.index import LSHIndex
from repro.sketches import HyperLogLog


class TestBuild:
    def test_every_point_in_every_table(self, l2_index, gaussian_points):
        n = gaussian_points.shape[0]
        for table in l2_index.tables:
            assert int(table.bucket_sizes().sum()) == n

    def test_n_and_dim(self, l2_index, gaussian_points):
        assert l2_index.n == gaussian_points.shape[0]
        assert l2_index.dim == 16

    def test_unbuilt_properties_raise(self):
        index = LSHIndex(SimHashLSH(4, seed=0), k=2, num_tables=3)
        assert not index.is_built
        with pytest.raises(EmptyIndexError):
            _ = index.n

    def test_build_empty_raises(self):
        index = LSHIndex(SimHashLSH(4, seed=0), k=2, num_tables=3)
        with pytest.raises((ConfigurationError, DimensionMismatchError)):
            index.build(np.empty((0, 4)))

    def test_wrong_dim_raises(self, rng):
        index = LSHIndex(SimHashLSH(4, seed=0), k=2, num_tables=3)
        with pytest.raises(DimensionMismatchError):
            index.build(rng.normal(size=(10, 5)))

    def test_table_count(self, l2_index):
        assert len(l2_index.tables) == 10

    def test_seeded_rebuild_is_identical(self, gaussian_points):
        def build():
            return LSHIndex(
                PStableLSH(16, w=2.0, p=2, seed=1), k=3, num_tables=4
            ).build(gaussian_points)

        a, b = build(), build()
        for ta, tb in zip(a.tables, b.tables):
            assert set(ta.buckets.keys()) == set(tb.buckets.keys())


class TestLookup:
    def test_lookup_shape(self, l2_index, gaussian_points):
        lookup = l2_index.lookup(gaussian_points[0])
        assert len(lookup.keys) == 10
        assert len(lookup.buckets) == 10
        assert len(lookup.hash_rows) == 10

    def test_indexed_point_found_in_all_tables(self, l2_index, gaussian_points):
        """An indexed point lands in its own bucket in every table."""
        lookup = l2_index.lookup(gaussian_points[5])
        for bucket in lookup.buckets:
            assert bucket is not None
            assert 5 in bucket.ids

    def test_num_collisions_at_least_L_for_member(self, l2_index, gaussian_points):
        assert l2_index.lookup(gaussian_points[0]).num_collisions >= 10

    def test_num_collisions_exact(self, l2_index, gaussian_points):
        """#collisions equals the sum of the query's bucket sizes."""
        lookup = l2_index.lookup(gaussian_points[3])
        manual = sum(b.size for b in lookup.buckets if b is not None)
        assert lookup.num_collisions == manual

    def test_dimension_mismatch(self, l2_index):
        with pytest.raises(DimensionMismatchError):
            l2_index.lookup(np.zeros(7))

    def test_unbuilt_lookup_raises(self):
        index = LSHIndex(SimHashLSH(4, seed=0), k=2, num_tables=3)
        with pytest.raises(EmptyIndexError):
            index.lookup(np.zeros(4))


class TestCandidates:
    def test_candidates_are_unique_and_sorted(self, l2_index, gaussian_points):
        lookup = l2_index.lookup(gaussian_points[0])
        cands = l2_index.candidate_ids(lookup)
        assert np.array_equal(cands, np.unique(cands))

    def test_candidates_subset_of_collisions(self, l2_index, gaussian_points):
        lookup = l2_index.lookup(gaussian_points[0])
        cands = l2_index.candidate_ids(lookup)
        assert cands.size <= lookup.num_collisions

    def test_candidates_equal_union_of_buckets(self, l2_index, gaussian_points):
        lookup = l2_index.lookup(gaussian_points[0])
        manual = set()
        for bucket in lookup.buckets:
            if bucket is not None:
                manual.update(bucket.ids.tolist())
        assert set(l2_index.candidate_ids(lookup).tolist()) == manual


class TestMergedSketch:
    def test_estimate_close_to_exact(self, l2_index, gaussian_points):
        """The merged-HLL candSize estimate tracks the exact distinct count."""
        errors = []
        for i in range(0, 50, 5):
            lookup = l2_index.lookup(gaussian_points[i])
            exact = l2_index.candidate_ids(lookup).size
            if exact == 0:
                continue
            estimate = l2_index.merged_sketch(lookup).estimate()
            errors.append(abs(estimate - exact) / exact)
        assert np.mean(errors) < 0.15  # paper: < 7% mean, m = 128

    def test_merged_sketch_matches_direct_sketch(self, l2_index, gaussian_points):
        """Merging bucket sketches == sketching the candidate union directly."""
        lookup = l2_index.lookup(gaussian_points[2])
        merged = l2_index.merged_sketch(lookup)
        direct = HyperLogLog(p=l2_index.hll_precision, seed=l2_index.hll_seed)
        direct.add_batch(l2_index.candidate_ids(lookup))
        assert merged == direct

    def test_estimate_candidates_shortcut(self, l2_index, gaussian_points):
        lookup = l2_index.lookup(gaussian_points[2])
        assert l2_index.estimate_candidates(lookup) == l2_index.merged_sketch(lookup).estimate()

    def test_sketchless_index_raises(self, gaussian_points):
        index = LSHIndex(
            PStableLSH(16, w=2.0, p=2, seed=1), k=3, num_tables=4, with_sketches=False
        ).build(gaussian_points)
        lookup = index.lookup(gaussian_points[0])
        with pytest.raises(ConfigurationError):
            index.merged_sketch(lookup)

    def test_sketchless_candidates_still_work(self, gaussian_points):
        index = LSHIndex(
            PStableLSH(16, w=2.0, p=2, seed=1), k=3, num_tables=4, with_sketches=False
        ).build(gaussian_points)
        lookup = index.lookup(gaussian_points[0])
        assert index.candidate_ids(lookup).size >= 1


class TestDiagnostics:
    def test_bucket_statistics_keys(self, l2_index):
        stats = l2_index.bucket_statistics()
        assert stats["tables"] == 10.0
        assert stats["buckets"] > 0
        assert 0.0 <= stats["sketched_fraction"] <= 1.0

    def test_sketch_memory_nonnegative(self, l2_index):
        assert l2_index.sketch_memory_bytes >= 0

    def test_lazy_threshold_zero_maximises_memory(self, gaussian_points):
        eager = LSHIndex(
            PStableLSH(16, w=2.0, p=2, seed=1), k=3, num_tables=4, lazy_threshold=0
        ).build(gaussian_points)
        lazy = LSHIndex(
            PStableLSH(16, w=2.0, p=2, seed=1), k=3, num_tables=4, lazy_threshold=None
        ).build(gaussian_points)
        assert eager.sketch_memory_bytes >= lazy.sketch_memory_bytes

    def test_repr(self, l2_index):
        assert "LSHIndex" in repr(l2_index)
