"""Tests for the synthetic dataset stand-ins and generators."""

import numpy as np
import pytest

from repro.datasets import (
    binary_sets,
    corel_like,
    covertype_like,
    gaussian_mixture,
    mnist_like,
    simhash_fingerprints,
    split_queries,
    uniform_hypercube,
    webspam_like,
)
from repro.distances import pairwise_distances
from repro.exceptions import ConfigurationError


class TestSplitQueries:
    def test_shapes(self, rng):
        points = rng.normal(size=(150, 4))
        data, queries = split_queries(points, num_queries=20, seed=0)
        assert data.shape == (130, 4)
        assert queries.shape == (20, 4)

    def test_disjoint(self, rng):
        points = rng.normal(size=(50, 3))
        data, queries = split_queries(points, num_queries=10, seed=0)
        data_rows = {tuple(row) for row in data}
        assert all(tuple(q) not in data_rows for q in queries)

    def test_deterministic(self, rng):
        points = rng.normal(size=(50, 3))
        _, qa = split_queries(points, num_queries=5, seed=9)
        _, qb = split_queries(points, num_queries=5, seed=9)
        assert np.array_equal(qa, qb)

    def test_too_many_queries(self, rng):
        with pytest.raises(ConfigurationError):
            split_queries(rng.normal(size=(10, 2)), num_queries=10)


class TestGaussianMixture:
    def test_shape(self):
        centers = np.zeros((3, 5))
        pts = gaussian_mixture(100, 5, centers, np.ones(3), seed=0)
        assert pts.shape == (100, 5)

    def test_labels(self):
        centers = np.array([[0.0] * 4, [100.0] * 4])
        pts, labels = gaussian_mixture(
            200, 4, centers, np.array([0.1, 0.1]), seed=0, return_labels=True
        )
        assert set(np.unique(labels)) <= {0, 1}
        # Points labelled 1 must be near the second center.
        assert np.all(pts[labels == 1].mean(axis=1) > 50)

    def test_background_fraction(self):
        centers = np.full((1, 3), 1000.0)
        pts, labels = gaussian_mixture(
            200, 3, centers, np.array([0.1]),
            background_fraction=0.5, background_scale=1.0, seed=0, return_labels=True,
        )
        assert abs(np.mean(labels == -1) - 0.5) < 0.05

    def test_weights_respected(self):
        centers = np.array([[0.0] * 2, [10.0] * 2])
        __, labels = gaussian_mixture(
            2000, 2, centers, np.array([0.1, 0.1]),
            weights=np.array([0.9, 0.1]), seed=0, return_labels=True,
        )
        assert np.mean(labels == 0) > 0.8

    def test_bad_centers_shape(self):
        with pytest.raises(ConfigurationError):
            gaussian_mixture(10, 3, np.zeros((2, 4)), np.ones(2))

    def test_bad_spreads(self):
        with pytest.raises(ConfigurationError):
            gaussian_mixture(10, 3, np.zeros((2, 3)), np.array([-1.0, 1.0]))

    def test_bad_weights(self):
        with pytest.raises(ConfigurationError):
            gaussian_mixture(10, 3, np.zeros((2, 3)), np.ones(2), weights=np.zeros(2))


class TestUniformHypercube:
    def test_range(self):
        pts = uniform_hypercube(100, 4, scale=2.0, seed=0)
        assert pts.min() >= 0.0
        assert pts.max() <= 2.0

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            uniform_hypercube(10, 4, scale=0.0)


class TestBinarySets:
    def test_shape_and_dtype(self):
        pts = binary_sets(50, universe=100, avg_set_size=20, seed=0)
        assert pts.shape == (50, 100)
        assert pts.dtype == np.uint8
        assert set(np.unique(pts)) <= {0, 1}

    def test_density_near_target(self):
        pts = binary_sets(500, universe=200, avg_set_size=40, seed=0)
        assert abs(pts.mean() - 0.2) < 0.05

    def test_bad_mutation_rate(self):
        with pytest.raises(ConfigurationError):
            binary_sets(10, universe=20, avg_set_size=5, mutation_rate=2.0)


class TestSimhashFingerprints:
    def test_shape(self, rng):
        fp = simhash_fingerprints(rng.normal(size=(30, 100)), bits=64, seed=0)
        assert fp.shape == (30, 64)
        assert fp.dtype == np.uint8

    def test_preserves_similarity_ordering(self, rng):
        """Closer vectors in angle get closer fingerprints in Hamming."""
        base = rng.normal(size=100)
        near = base + 0.1 * rng.normal(size=100)
        far = rng.normal(size=100)
        fp = simhash_fingerprints(np.stack([base, near, far]), bits=256, seed=0)
        d_near = (fp[0] != fp[1]).sum()
        d_far = (fp[0] != fp[2]).sum()
        assert d_near < d_far

    def test_deterministic(self, rng):
        x = rng.normal(size=(5, 10))
        assert np.array_equal(
            simhash_fingerprints(x, seed=3), simhash_fingerprints(x, seed=3)
        )


class TestStandIns:
    @pytest.mark.parametrize(
        "factory,metric,dim",
        [
            (corel_like, "l2", 32),
            (covertype_like, "l1", 54),
            (webspam_like, "cosine", 254),
            (mnist_like, "hamming", 64),
        ],
    )
    def test_schema(self, factory, metric, dim):
        ds = factory(n=500, seed=0)
        assert ds.metric == metric
        assert ds.dim == dim
        assert ds.n == 500
        assert len(ds.radii) == 6
        assert ds.beta_over_alpha > 0

    @pytest.mark.parametrize("factory", [corel_like, covertype_like, webspam_like, mnist_like])
    def test_deterministic(self, factory):
        a = factory(n=200, seed=5)
        b = factory(n=200, seed=5)
        assert np.array_equal(a.points, b.points)

    @pytest.mark.parametrize("factory", [corel_like, covertype_like, webspam_like])
    def test_radii_are_meaningful(self, factory):
        """Some — but not all — pairs fall within the paper's radius sweep.

        This is the property that makes the radius sweep interesting:
        neighborhoods grow across the sweep without engulfing everything.
        """
        ds = factory(n=800, seed=1)
        sample = ds.points[:200]
        D = pairwise_distances(sample[:40], sample, ds.metric)
        off_diagonal = D[D > 0]
        frac_within_max = float(np.mean(off_diagonal <= max(ds.radii)))
        assert 0.002 < frac_within_max < 0.9

    def test_mnist_radii_meaningful(self):
        ds = mnist_like(n=800, seed=1)
        D = pairwise_distances(ds.points[:40], ds.points[:200], "hamming")
        off_diagonal = D[D > 0]
        frac = float(np.mean(off_diagonal <= max(ds.radii)))
        assert 0.002 < frac < 0.9

    def test_webspam_has_hard_and_easy_queries(self):
        """The Figure 3 structure: output sizes spread from tiny to huge."""
        ds = webspam_like(n=2000, seed=0)
        D = pairwise_distances(ds.points[:80], ds.points, "cosine")
        sizes = (D <= 0.1).sum(axis=1)
        assert sizes.max() > ds.n / 4      # hard queries exist
        assert sizes.min() <= 5            # easy queries exist

    def test_mnist_extras(self):
        ds = mnist_like(n=100, seed=0)
        assert ds.extras["images"].shape == (100, 784)
        assert ds.extras["labels"].shape == (100,)

    def test_points_binary_for_mnist(self):
        ds = mnist_like(n=50, seed=0)
        assert set(np.unique(ds.points)) <= {0, 1}

    def test_repr(self):
        assert "corel-like" in repr(corel_like(n=50, seed=0))
