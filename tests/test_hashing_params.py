"""Tests for the parameter rule k = ceil(log(1 - delta^(1/L)) / log p1)."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.hashing import concatenation_width, expected_recall, success_probability


class TestConcatenationWidth:
    def test_paper_mnist_setting(self):
        """MNIST at r=12, d=64: p1 = 1 - 12/64 = 0.8125 with L=50, delta=0.1."""
        p1 = 1 - 12 / 64
        k = concatenation_width(50, 0.1, p1)
        expected = math.ceil(math.log(1 - 0.1 ** (1 / 50)) / math.log(p1))
        assert k == expected

    def test_guarantee_bracketing(self):
        """The ceil rule brackets 1 - delta (E2LSH trades a hair of recall).

        success(k) <= 1 - delta <= success(k - 1) whenever the real-valued
        width is not an integer and k is not clamped.
        """
        for p1 in (0.5, 0.7, 0.85, 0.95):
            for delta in (0.05, 0.1, 0.3):
                for L in (10, 50, 200):
                    k = concatenation_width(L, delta, p1)
                    if k >= 64:  # clamped; bracketing not applicable
                        continue
                    assert success_probability(k, L, p1) <= 1 - delta + 1e-9
                    if k > 1:
                        assert success_probability(k - 1, L, p1) >= 1 - delta - 1e-9

    def test_recall_close_to_target(self):
        """At the paper's own settings the recall loss from ceil is small."""
        p1 = 1 - 12 / 64  # MNIST at r = 12
        k = concatenation_width(50, 0.1, p1)
        assert success_probability(k, 50, p1) > 0.8  # target is 0.9

    def test_p1_one_returns_cap(self):
        assert concatenation_width(50, 0.1, 1.0, max_k=32) == 32

    def test_tiny_p1_clamped(self):
        assert concatenation_width(50, 0.1, 1e-9, max_k=64) <= 64

    def test_minimum_is_one(self):
        assert concatenation_width(1000, 0.9, 0.99) >= 1

    @pytest.mark.parametrize("bad_p1", [0.0, -0.5, 1.5])
    def test_invalid_p1(self, bad_p1):
        with pytest.raises(ConfigurationError):
            concatenation_width(50, 0.1, bad_p1)

    def test_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            concatenation_width(50, 0.0, 0.9)

    def test_invalid_tables(self):
        with pytest.raises(ConfigurationError):
            concatenation_width(0, 0.1, 0.9)

    def test_larger_p1_allows_larger_k(self):
        k_low = concatenation_width(50, 0.1, 0.7)
        k_high = concatenation_width(50, 0.1, 0.95)
        assert k_high >= k_low


class TestSuccessProbability:
    def test_bounds(self):
        assert 0.0 <= success_probability(5, 10, 0.5) <= 1.0

    def test_more_tables_help(self):
        assert success_probability(5, 100, 0.8) > success_probability(5, 10, 0.8)

    def test_wider_hash_hurts(self):
        assert success_probability(10, 50, 0.8) < success_probability(5, 50, 0.8)

    def test_p1_one_is_certain(self):
        assert success_probability(8, 3, 1.0) == 1.0

    def test_p1_zero_is_impossible(self):
        assert success_probability(8, 3, 0.0) == 0.0

    def test_invalid_p1(self):
        with pytest.raises(ConfigurationError):
            success_probability(5, 10, 1.5)


class TestExpectedRecall:
    def test_empty_is_perfect(self):
        assert expected_recall(np.array([]), k=5, num_tables=10) == 1.0

    def test_matches_single_point_formula(self):
        probs = np.array([0.8])
        assert expected_recall(probs, k=4, num_tables=20) == pytest.approx(
            success_probability(4, 20, 0.8)
        )

    def test_mean_over_points(self):
        probs = np.array([0.7, 0.9])
        expected = 0.5 * (
            success_probability(3, 10, 0.7) + success_probability(3, 10, 0.9)
        )
        assert expected_recall(probs, k=3, num_tables=10) == pytest.approx(expected)

    def test_invalid_probabilities(self):
        with pytest.raises(ConfigurationError):
            expected_recall(np.array([1.2]), k=3, num_tables=10)
