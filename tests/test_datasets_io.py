"""Tests for the real-dataset file loaders."""

import numpy as np
import pytest

from repro.datasets.io import load_dense, load_libsvm
from repro.exceptions import ConfigurationError


@pytest.fixture
def libsvm_file(tmp_path):
    path = tmp_path / "data.svm"
    path.write_text(
        "1 1:0.5 3:2.0\n"
        "-1 2:1.5\n"
        "\n"
        "# a comment line\n"
        "1 1:1.0 2:1.0 4:4.0\n"
    )
    return str(path)


class TestLoadLibsvm:
    def test_shapes_and_values(self, libsvm_file):
        points, labels = load_libsvm(libsvm_file, dim=4)
        assert points.shape == (3, 4)
        assert labels.tolist() == [1.0, -1.0, 1.0]
        assert points[0].tolist() == [0.5, 0.0, 2.0, 0.0]
        assert points[1].tolist() == [0.0, 1.5, 0.0, 0.0]
        assert points[2].tolist() == [1.0, 1.0, 0.0, 4.0]

    def test_max_rows(self, libsvm_file):
        points, labels = load_libsvm(libsvm_file, dim=4, max_rows=2)
        assert points.shape == (2, 4)

    def test_zero_based(self, tmp_path):
        path = tmp_path / "zb.svm"
        path.write_text("1 0:9.0 2:3.0\n")
        points, _ = load_libsvm(str(path), dim=3, zero_based=True)
        assert points[0].tolist() == [9.0, 0.0, 3.0]

    def test_index_out_of_range(self, tmp_path):
        path = tmp_path / "bad.svm"
        path.write_text("1 9:1.0\n")
        with pytest.raises(ConfigurationError):
            load_libsvm(str(path), dim=4)

    def test_bad_label(self, tmp_path):
        path = tmp_path / "bad.svm"
        path.write_text("xx 1:1.0\n")
        with pytest.raises(ConfigurationError):
            load_libsvm(str(path), dim=4)

    def test_bad_token(self, tmp_path):
        path = tmp_path / "bad.svm"
        path.write_text("1 nonsense\n")
        with pytest.raises(ConfigurationError):
            load_libsvm(str(path), dim=4)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.svm"
        path.write_text("\n")
        with pytest.raises(ConfigurationError):
            load_libsvm(str(path), dim=4)


class TestLoadDense:
    def test_whitespace_file(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1.0 2.0 3.0\n4.0 5.0 6.0\n")
        points, labels = load_dense(str(path))
        assert points.shape == (2, 3)
        assert labels is None

    def test_csv_with_label_column(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.0,2.0,7\n3.0,4.0,2\n")
        points, labels = load_dense(str(path), delimiter=",", label_column=-1)
        assert points.shape == (2, 2)
        assert labels.tolist() == [7.0, 2.0]

    def test_max_rows(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 2\n3 4\n5 6\n")
        points, _ = load_dense(str(path), max_rows=2)
        assert points.shape == (2, 2)

    def test_single_row(self, tmp_path):
        path = tmp_path / "one.txt"
        path.write_text("1 2 3\n")
        points, _ = load_dense(str(path))
        assert points.shape == (1, 3)

    def test_pipeline_integration(self, tmp_path):
        """Loaded data flows into the standard split + index pipeline."""
        from repro.core import CostModel, HybridLSH
        from repro.datasets import split_queries

        rng = np.random.default_rng(0)
        data = rng.normal(size=(120, 6))
        path = tmp_path / "real.txt"
        np.savetxt(path, data)
        points, _ = load_dense(str(path))
        train, queries = split_queries(points, num_queries=10, seed=0)
        searcher = HybridLSH(
            train, metric="l2", radius=1.5, num_tables=5,
            cost_model=CostModel.from_ratio(6.0), seed=1,
        )
        result = searcher.query(queries[0])
        assert result.output_size >= 0
