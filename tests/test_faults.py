"""Fault drills: deterministic injection, recovery, degradation, telemetry.

The contract under test (PR 8): with a scripted or seeded
:class:`~repro.faults.FaultPlan` driving worker crashes, hangs, slow and
corrupt replies, and dropped messages, the pool answers every request
within its deadline/retry budget; ``allow_partial=False`` answers are
bit-identical to a fault-free run (or raise the typed
``ShardUnavailableError``); ``allow_partial=True`` degrades instead,
tagging results with the missing shard ids; and every recovery action
shows up in the failure telemetry.
"""

import json
import time

import numpy as np
import pytest

from repro.api import Index, IndexSpec, QuerySpec
from repro.exceptions import ConfigurationError, ShardUnavailableError
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultTolerancePolicy
from repro.service.workers import WorkerPool, _CircuitBreaker

N, DIM, SHARDS, WORKERS = 400, 12, 3, 2


def _spec(**overrides):
    base = dict(
        metric="l2",
        radius=1.2,
        num_tables=8,
        num_shards=SHARDS,
        layout="frozen",
        cost_ratio=6.0,
        seed=7,
    )
    base.update(overrides)
    return IndexSpec(**base)


def _drill_policy(**overrides):
    """Millisecond-scale budgets so fault drills run fast."""
    base = dict(
        recv_deadline=0.5,
        startup_deadline=30.0,
        max_retries=2,
        backoff_base=0.01,
        backoff_max=0.05,
        backoff_jitter=0.25,
        breaker_threshold=3,
        breaker_cooldown=30.0,
    )
    base.update(overrides)
    return FaultTolerancePolicy(**base)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    return rng.normal(size=(N, DIM))


@pytest.fixture(scope="module")
def queries(points):
    rng = np.random.default_rng(1)
    return np.concatenate([points[:4], rng.normal(size=(4, DIM))])


@pytest.fixture(scope="module")
def artifact(tmp_path_factory, points):
    """A saved processes-execution artifact the drills reopen cheaply."""
    index = Index.build(points, _spec(execution="processes"), num_workers=WORKERS)
    path = str(tmp_path_factory.mktemp("faults") / "idx")
    index.save(path)
    index.close()
    return path


@pytest.fixture(scope="module")
def baseline(artifact, queries):
    """Fault-free answers every drill must reproduce bit-identically."""
    pool = WorkerPool(artifact, num_workers=WORKERS)
    try:
        return {
            "radius": pool.query_batch(queries),
            "topk": pool.query_topk_batch(queries, k=5),
        }
    finally:
        pool.close()


def assert_results_equal(got, expected):
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)
        assert not a.degraded
        assert a.missing_shards == ()


class TestFaultPlan:
    def test_scripted_schedule_fires_on_the_exact_request(self):
        plan = FaultPlan.scripted(
            FaultSpec(FaultKind.CRASH, worker=0, op_index=2),
            FaultSpec(FaultKind.DROP, worker=1, op_index=0, repeat=2),
        )
        w0 = plan.for_worker(0)
        assert [w0.next_fault() for _ in range(4)] == [
            None, None, plan.specs[0], None,
        ]
        w1 = plan.for_worker(1)
        assert [f.kind if f else None for f in (w1.next_fault(), w1.next_fault(), w1.next_fault())] == [
            FaultKind.DROP, FaultKind.DROP, None,
        ]

    def test_seeded_plans_are_reproducible(self):
        a = FaultPlan.seeded(seed=11, num_workers=3, num_ops=50, rate=0.2)
        b = FaultPlan.seeded(seed=11, num_workers=3, num_ops=50, rate=0.2)
        c = FaultPlan.seeded(seed=12, num_workers=3, num_ops=50, rate=0.2)
        assert a == b
        assert a != c
        assert all(spec.worker < 3 and spec.op_index < 50 for spec in a.specs)

    def test_empty_plan_is_falsy_and_injects_nothing(self):
        plan = FaultPlan.scripted()
        assert not plan
        assert plan.for_worker(0).next_fault() is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.CRASH, worker=-1, op_index=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.CRASH, worker=0, op_index=0, repeat=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.CRASH, worker=0, op_index=0, scope="bogus")
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.CRASH, worker=0, op_index=0, replica=-1)
        with pytest.raises(ConfigurationError):
            FaultPlan.seeded(seed=0, num_workers=0, num_ops=1)
        with pytest.raises(ConfigurationError):
            FaultPlan.seeded(seed=0, num_workers=1, num_ops=1, rate=1.5)

    def test_lifetime_scope_counts_across_injector_sessions(self):
        """``scope="lifetime"`` matches ``start + index``, not the session."""
        spec = FaultSpec(FaultKind.DROP, worker=0, op_index=3, scope="lifetime")
        plan = FaultPlan.scripted(spec)
        # First session consumed ops 0-2; the fault fires at lifetime 3.
        resumed = plan.for_worker(0, start=3)
        assert resumed.next_fault() == spec
        # A session starting past the fault index never sees it again —
        # unlike the default process scope, which restarts per session.
        later = plan.for_worker(0, start=4)
        assert [later.next_fault() for _ in range(3)] == [None, None, None]

    def test_replica_field_pins_a_fault_to_one_endpoint(self):
        pinned = FaultSpec(FaultKind.DROP, worker=0, op_index=0, replica=1)
        wildcard = FaultSpec(FaultKind.DROP, worker=0, op_index=1)
        plan = FaultPlan.scripted(pinned, wildcard)
        r0 = plan.for_worker(0, replica=0)
        assert [r0.next_fault() for _ in range(2)] == [None, wildcard]
        r1 = plan.for_worker(0, replica=1)
        assert [r1.next_fault() for _ in range(2)] == [pinned, wildcard]


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultTolerancePolicy(recv_deadline=0.0)
        with pytest.raises(ConfigurationError):
            FaultTolerancePolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            FaultTolerancePolicy(backoff_base=1.0, backoff_max=0.5)
        with pytest.raises(ConfigurationError):
            FaultTolerancePolicy(breaker_threshold=0)

    def test_backoff_is_exponential_capped_and_jittered(self):
        policy = FaultTolerancePolicy(
            backoff_base=0.1, backoff_max=0.3, backoff_jitter=0.5
        )
        assert policy.backoff_seconds(1, 0.0) == pytest.approx(0.1)
        assert policy.backoff_seconds(2, 0.0) == pytest.approx(0.2)
        assert policy.backoff_seconds(5, 0.0) == pytest.approx(0.3)  # capped
        assert policy.backoff_seconds(1, 1.0) == pytest.approx(0.15)

    def test_with_overrides_revalidates(self):
        policy = FaultTolerancePolicy().with_overrides(max_retries=5)
        assert policy.max_retries == 5
        with pytest.raises(ConfigurationError):
            FaultTolerancePolicy().with_overrides(recv_deadline=-1.0)


class TestCircuitBreaker:
    def test_opens_at_threshold_and_admits_half_open_probe(self):
        breaker = _CircuitBreaker(threshold=2, cooldown=0.05)
        assert breaker.allow() and not breaker.is_open
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # this call opened it
        assert breaker.is_open and not breaker.allow()
        time.sleep(0.06)
        assert breaker.allow()  # half-open probe admitted
        assert breaker.record_failure() is False  # probe failed: re-opened
        assert not breaker.allow()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_success()
        assert not breaker.is_open and breaker.allow()


class TestRecovery:
    """Transient faults: the answer is bit-identical to the fault-free run.

    Faults are scheduled at ``op_index=1`` (after a clean warmup
    request): request indices count per worker *process*, so a fault at
    index 0 would re-fire on the fresh process's retry and model a
    persistent outage instead (see :class:`TestDegradation`).
    """

    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(FaultKind.CRASH, worker=0, op_index=1),
            FaultSpec(FaultKind.HANG, worker=0, op_index=1, seconds=0.05),
            FaultSpec(FaultKind.DROP, worker=1, op_index=1),
            FaultSpec(FaultKind.CORRUPT, worker=0, op_index=1),
        ],
        ids=["crash", "hang", "drop", "corrupt"],
    )
    def test_transient_fault_recovers_bit_identically(
        self, artifact, queries, baseline, spec
    ):
        pool = WorkerPool(
            artifact,
            num_workers=WORKERS,
            policy=_drill_policy(),
            fault_plan=FaultPlan.scripted(spec),
        )
        try:
            # Warmup: request 0 on every worker is clean by schedule.
            assert_results_equal(pool.query_batch(queries), baseline["radius"])
            # Request 1 trips the fault; recovery must be invisible.
            assert_results_equal(pool.query_batch(queries), baseline["radius"])
            counters = pool.failure_counters()
            assert counters["worker_retries"] >= 1
            assert sum(counters["respawns_by_cause"].values()) >= 1
            if spec.kind in (FaultKind.HANG, FaultKind.DROP):
                assert counters["worker_timeouts"] >= 1
        finally:
            pool.close()

    def test_slow_reply_within_deadline_needs_no_recovery(
        self, artifact, queries, baseline
    ):
        pool = WorkerPool(
            artifact,
            num_workers=WORKERS,
            policy=_drill_policy(recv_deadline=5.0),
            fault_plan=FaultPlan.scripted(
                FaultSpec(FaultKind.SLOW, worker=0, op_index=0, seconds=0.05)
            ),
        )  # SLOW never respawns, so op_index=0 is safe here
        try:
            assert_results_equal(pool.query_batch(queries), baseline["radius"])
            counters = pool.failure_counters()
            assert counters["worker_retries"] == 0
            assert counters["respawns_by_cause"] == {}
        finally:
            pool.close()

    def test_lifetime_scope_crash_at_index_zero_still_recovers(
        self, artifact, queries, baseline
    ):
        """The outage-vs-transient distinction is the ``scope`` field.

        A *process*-scoped crash at request index 0 re-fires on every
        respawn (a persistent outage; see :class:`TestDegradation`).
        The same crash with ``scope="lifetime"`` fires exactly once in
        the endpoint's life — the respawned process resumes at the
        lifetime op count, past the fault — so even an index-0 crash
        recovers bit-identically.
        """
        pool = WorkerPool(
            artifact,
            num_workers=WORKERS,
            policy=_drill_policy(),
            fault_plan=FaultPlan.scripted(
                FaultSpec(
                    FaultKind.CRASH, worker=0, op_index=0, scope="lifetime"
                )
            ),
        )
        try:
            assert_results_equal(pool.query_batch(queries), baseline["radius"])
            assert_results_equal(pool.query_batch(queries), baseline["radius"])
            counters = pool.failure_counters()
            assert counters["respawns_by_cause"].get("crash", 0) == 1
        finally:
            pool.close()

    def test_topk_recovers_bit_identically(self, artifact, queries, baseline):
        pool = WorkerPool(
            artifact,
            num_workers=WORKERS,
            policy=_drill_policy(),
            fault_plan=FaultPlan.scripted(
                FaultSpec(FaultKind.CRASH, worker=1, op_index=1)
            ),
        )
        try:
            assert_results_equal(
                pool.query_topk_batch(queries, k=5), baseline["topk"]
            )
            assert_results_equal(
                pool.query_topk_batch(queries, k=5), baseline["topk"]
            )
        finally:
            pool.close()


def _always_down(worker: int) -> FaultPlan:
    """A persistently sick worker: crashes on every request, forever."""
    return FaultPlan.scripted(
        FaultSpec(FaultKind.CRASH, worker=worker, op_index=0, repeat=1_000_000)
    )


class TestDegradation:
    def test_strict_mode_raises_typed_error_naming_the_shards(
        self, artifact, queries
    ):
        pool = WorkerPool(
            artifact,
            num_workers=WORKERS,
            policy=_drill_policy(max_retries=1),
            fault_plan=_always_down(0),
        )
        try:
            with pytest.raises(ShardUnavailableError) as excinfo:
                pool.query_batch(queries)
            assert excinfo.value.shards == tuple(pool.worker_shards(0))
        finally:
            pool.close()

    def test_allow_partial_degrades_with_missing_shard_ids(
        self, artifact, queries, baseline
    ):
        pool = WorkerPool(
            artifact,
            num_workers=WORKERS,
            policy=_drill_policy(max_retries=1),
            fault_plan=_always_down(0),
        )
        try:
            results = pool.query_batch(queries, allow_partial=True)
            missing = tuple(pool.worker_shards(0))
            live = set(np.concatenate([pool._shard_gids[1]]).tolist())
            for got, full in zip(results, baseline["radius"]):
                assert got.degraded
                assert got.missing_shards == missing
                # The degraded answer is exactly the fault-free answer
                # restricted to the shards that stayed reachable.
                keep = np.isin(full.ids, np.fromiter(live, dtype=np.int64, count=len(live)))
                assert np.array_equal(got.ids, full.ids[keep])
                assert np.array_equal(got.distances, full.distances[keep])
        finally:
            pool.close()

    def test_allow_partial_topk_serves_the_reachable_shards(
        self, artifact, queries
    ):
        pool = WorkerPool(
            artifact,
            num_workers=WORKERS,
            policy=_drill_policy(max_retries=1),
            fault_plan=_always_down(1),
        )
        try:
            results = pool.query_topk_batch(queries, k=5, allow_partial=True)
            missing = tuple(pool.worker_shards(1))
            live_gids = np.concatenate(
                [pool._shard_gids[s] for s in pool.worker_shards(0)]
            )
            for got in results:
                assert got.degraded
                assert got.missing_shards == missing
                assert got.ids.size == 5
                assert np.isin(got.ids, live_gids).all()
        finally:
            pool.close()

    def test_breaker_opens_and_fails_fast(self, artifact, queries):
        pool = WorkerPool(
            artifact,
            num_workers=WORKERS,
            policy=_drill_policy(max_retries=0, breaker_threshold=1),
            fault_plan=_always_down(0),
        )
        try:
            with pytest.raises(ShardUnavailableError):
                pool.query_batch(queries)
            assert pool.open_breaker_count() == 1
            counters = pool.failure_counters()
            assert counters["breaker_opens"] == 1
            # While open (30s cooldown) the worker fails fast: the
            # degraded path answers without paying another deadline.
            started = time.perf_counter()
            results = pool.query_batch(queries, allow_partial=True)
            assert time.perf_counter() - started < 0.4  # < one deadline
            assert all(r.degraded for r in results)
        finally:
            pool.close()

    def test_all_shards_missing_raises_even_with_allow_partial(
        self, artifact, queries
    ):
        plan = FaultPlan.scripted(
            FaultSpec(FaultKind.CRASH, worker=0, op_index=0, repeat=1_000_000),
            FaultSpec(FaultKind.CRASH, worker=1, op_index=0, repeat=1_000_000),
        )
        pool = WorkerPool(
            artifact,
            num_workers=WORKERS,
            policy=_drill_policy(max_retries=0),
            fault_plan=plan,
        )
        try:
            with pytest.raises(ShardUnavailableError):
                pool.query_batch(queries, allow_partial=True)
        finally:
            pool.close()


class TestFacadeAndStream:
    def test_index_open_threads_policy_and_plan(self, artifact, queries):
        index = Index.open(
            artifact,
            num_workers=WORKERS,
            fault_policy=_drill_policy(max_retries=1),
            fault_plan=_always_down(0),
        )
        try:
            request = QuerySpec(queries, allow_partial=True)
            results = index.query(request)
            assert all(r.degraded for r in results)
            snapshot = index.stats_snapshot()
            assert snapshot["degraded_responses"] == len(queries)
            assert sum(snapshot["respawns_by_cause"].values()) >= 1
            assert snapshot["gauges"]["breaker_open_workers"] >= 0.0
        finally:
            index.close()

    def test_fault_args_rejected_for_non_process_indexes(self, points, tmp_path):
        index = Index.build(points, _spec())
        path = str(tmp_path / "threads-idx")
        index.save(path)
        index.close()
        with pytest.raises(ConfigurationError):
            Index.open(path, fault_policy=_drill_policy())

    def test_stream_protocol_degrades_and_exposes_failure_metrics(
        self, artifact, queries
    ):
        from repro.service import serve_stream

        index = Index.open(
            artifact,
            num_workers=WORKERS,
            fault_policy=_drill_policy(max_retries=1),
            fault_plan=_always_down(0),
        )
        try:
            script = [
                json.dumps(
                    {"query": queries[0].tolist(), "radius": 1.2,
                     "allow_partial": True}
                ),
                json.dumps({"query": queries[0].tolist(), "radius": 1.2}),
                json.dumps({"op": "metrics"}),
            ]
            partial, strict, metrics = (
                json.loads(line) for line in serve_stream(index, script)
            )
            assert partial["degraded"] is True
            assert partial["missing_shards"] == sorted(
                index.engine.worker_shards(0)
            )
            assert "error" in strict and "unavailable" in strict["error"]
            assert "degraded" not in strict
            text = metrics["metrics"]
            for name in (
                "repro_worker_timeouts_total",
                "repro_worker_retries_total",
                "repro_degraded_responses_total",
                "repro_breaker_opens_total",
                "repro_worker_respawns_by_cause_total",
            ):
                assert name in text
        finally:
            index.close()

    def test_heartbeat_respawns_a_silently_dead_worker(self, artifact):
        import os
        import signal

        pool = WorkerPool(
            artifact,
            num_workers=WORKERS,
            policy=_drill_policy(heartbeat_interval=0.05),
        )
        try:
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                counters = pool.failure_counters()
                if counters["respawns_by_cause"].get("heartbeat", 0) >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("heartbeat never respawned the killed worker")
            assert victim not in pool.worker_pids()
        finally:
            pool.close()

    def test_heartbeat_respawn_reaches_facade_stats_and_prometheus(
        self, artifact
    ):
        """The heartbeat cause must survive the full telemetry pipeline.

        Pool counter -> facade ``stats_snapshot`` -> Prometheus
        exposition: an operator watching the scrape endpoint sees the
        silent-death respawn with its cause label, no pool access
        needed.
        """
        import os
        import signal

        from repro.observability.prometheus import prometheus_text

        index = Index.open(
            artifact,
            num_workers=WORKERS,
            fault_policy=_drill_policy(heartbeat_interval=0.05),
        )
        try:
            victim = index.engine.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            # Poll the passive parent-side counter: a stats_snapshot()
            # here would itself round-trip to the dead endpoint and
            # respawn it with cause "crash" before the heartbeat runs.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                counters = index.engine.failure_counters()
                if counters["respawns_by_cause"].get("heartbeat", 0) >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("heartbeat never respawned the killed worker")
            snapshot = index.stats_snapshot()
            assert snapshot["respawns_by_cause"].get("heartbeat", 0) >= 1
            text = prometheus_text(snapshot)
            assert (
                'repro_worker_respawns_by_cause_total{cause="heartbeat"}'
                in text
            )
        finally:
            index.close()


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


class TestChaosSoak:
    """Seeded chaos schedules: never deadlock, never lose bit-identity."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_seeded_schedule_recovers_within_budget(
        self, seed, artifact, queries, baseline
    ):
        policy = _drill_policy(recv_deadline=0.4)
        plan = FaultPlan.seeded(
            seed=seed,
            num_workers=WORKERS,
            num_ops=4,
            rate=0.3,
            max_delay=0.05,
        )
        assert plan == FaultPlan.seeded(
            seed=seed, num_workers=WORKERS, num_ops=4, rate=0.3, max_delay=0.05
        )
        # Shift every fault off request index 0: indices count per
        # worker *process*, so an index-0 fault re-fires on each
        # post-respawn retry — a persistent outage, which the strict
        # bit-identity contract is allowed to fail on.  With index 0
        # clean, one respawn always reaches a healthy request.
        shifted = FaultPlan.scripted(
            *(
                FaultSpec(
                    s.kind,
                    worker=s.worker,
                    op_index=s.op_index + 1,
                    seconds=s.seconds,
                    repeat=s.repeat,
                )
                for s in plan.specs
            )
        )
        # Worst case per batch: every attempt pays the full deadline on
        # both workers plus backoff and respawn overhead.
        budget = (
            (policy.max_retries + 1) * policy.recv_deadline * WORKERS + 5.0
        )
        pool = WorkerPool(
            artifact, num_workers=WORKERS, policy=policy, fault_plan=shifted
        )
        try:
            for _ in range(3):
                started = time.monotonic()
                results = pool.query_batch(queries)
                assert time.monotonic() - started < budget
                assert_results_equal(results, baseline["radius"])
        finally:
            pool.close()
