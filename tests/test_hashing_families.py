"""Tests for the LSH families: determinism, sensitivity, p(c) formulas."""


import numpy as np
import pytest

from repro.distances import cosine_distance, hamming_distance, jaccard_distance
from repro.exceptions import ConfigurationError, UnknownMetricError
from repro.hashing import (
    BitSamplingLSH,
    MinHashLSH,
    PStableLSH,
    SimHashLSH,
    family_for_metric,
)

RNG = np.random.default_rng(2024)


def empirical_collision_rate(family, x, y, trials=3000):
    """Fraction of sampled atomic hashes under which x and y collide."""
    hits = 0
    pair = np.stack([x, y])
    for _ in range(trials):
        values = family.sample(k=1).hash_matrix(pair)
        hits += int(values[0, 0] == values[1, 0])
    return hits / trials


class TestBitSampling:
    def test_collision_probability_formula(self):
        fam = BitSamplingLSH(dim=64)
        assert fam.collision_probability(0) == 1.0
        assert fam.collision_probability(16) == pytest.approx(1 - 16 / 64)
        assert fam.collision_probability(64) == 0.0

    def test_collision_probability_clamped(self):
        assert BitSamplingLSH(dim=8).collision_probability(100) == 0.0

    def test_negative_distance_raises(self):
        with pytest.raises(ValueError):
            BitSamplingLSH(dim=8).collision_probability(-1)

    def test_empirical_matches_theory(self):
        fam = BitSamplingLSH(dim=32, seed=0)
        x = RNG.integers(0, 2, size=32)
        y = x.copy()
        y[:8] ^= 1  # Hamming distance exactly 8
        theory = fam.collision_probability(hamming_distance(x, y))
        empirical = empirical_collision_rate(fam, x, y)
        assert abs(empirical - theory) < 0.04

    def test_hash_values_are_bits(self):
        fam = BitSamplingLSH(dim=16, seed=1)
        values = fam.sample(k=5).hash_matrix(RNG.integers(0, 2, size=(20, 16)))
        assert set(np.unique(values)) <= {0, 1}

    def test_deterministic_given_seed(self):
        points = RNG.integers(0, 2, size=(10, 16))
        a = BitSamplingLSH(dim=16, seed=9).sample(k=4).hash_matrix(points)
        b = BitSamplingLSH(dim=16, seed=9).sample(k=4).hash_matrix(points)
        assert np.array_equal(a, b)

    def test_batch_collision_probability(self):
        fam = BitSamplingLSH(dim=64)
        dists = np.array([0.0, 16.0, 64.0, 100.0])
        assert np.allclose(
            fam.collision_probability_batch(dists), [1.0, 0.75, 0.0, 0.0]
        )


class TestSimHash:
    def test_collision_probability_endpoints(self):
        fam = SimHashLSH(dim=16)
        assert fam.collision_probability(0.0) == pytest.approx(1.0)
        assert fam.collision_probability(1.0) == pytest.approx(0.5)
        assert fam.collision_probability(2.0) == pytest.approx(0.0)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            SimHashLSH(dim=8).collision_probability(2.5)

    def test_empirical_matches_theory(self):
        fam = SimHashLSH(dim=24, seed=0)
        x = RNG.normal(size=24)
        y = x + 0.5 * RNG.normal(size=24)
        theory = fam.collision_probability(cosine_distance(x, y))
        empirical = empirical_collision_rate(fam, x, y)
        assert abs(empirical - theory) < 0.04

    def test_scale_invariance(self):
        """SimHash values depend only on direction."""
        fam = SimHashLSH(dim=12, seed=3)
        g = fam.sample(k=8)
        x = RNG.normal(size=12)
        assert np.array_equal(g.hash_one(x), g.hash_one(10.0 * x))

    def test_batch_matches_scalar_probability(self):
        fam = SimHashLSH(dim=8)
        dists = np.array([0.0, 0.3, 1.0, 2.0])
        batch = fam.collision_probability_batch(dists)
        for i, c in enumerate(dists):
            assert batch[i] == pytest.approx(fam.collision_probability(float(c)))


class TestPStable:
    @pytest.mark.parametrize("p", [1, 2])
    def test_zero_distance_collides(self, p):
        assert PStableLSH(dim=8, w=2.0, p=p).collision_probability(0.0) == 1.0

    @pytest.mark.parametrize("p", [1, 2])
    def test_monotone_decreasing(self, p):
        fam = PStableLSH(dim=8, w=2.0, p=p)
        probs = [fam.collision_probability(c) for c in (0.5, 1.0, 2.0, 4.0, 8.0)]
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            PStableLSH(dim=8, w=1.0, p=3)

    def test_invalid_w(self):
        with pytest.raises(ConfigurationError):
            PStableLSH(dim=8, w=0.0)

    def test_l2_empirical_matches_theory(self):
        fam = PStableLSH(dim=16, w=4.0, p=2, seed=0)
        x = RNG.normal(size=16)
        y = x + RNG.normal(size=16) * 0.5
        c = float(np.linalg.norm(x - y))
        theory = fam.collision_probability(c)
        empirical = empirical_collision_rate(fam, x, y)
        assert abs(empirical - theory) < 0.04

    def test_l1_empirical_matches_theory(self):
        fam = PStableLSH(dim=16, w=6.0, p=1, seed=0)
        x = RNG.normal(size=16)
        y = x + RNG.normal(size=16) * 0.4
        c = float(np.abs(x - y).sum())
        theory = fam.collision_probability(c)
        empirical = empirical_collision_rate(fam, x, y)
        assert abs(empirical - theory) < 0.04

    def test_metric_name_follows_p(self):
        assert PStableLSH(dim=4, w=1.0, p=1).metric_name == "l1"
        assert PStableLSH(dim=4, w=1.0, p=2).metric_name == "l2"

    def test_wider_buckets_collide_more(self):
        narrow = PStableLSH(dim=8, w=1.0, p=2)
        wide = PStableLSH(dim=8, w=8.0, p=2)
        assert wide.collision_probability(1.0) > narrow.collision_probability(1.0)

    def test_batch_matches_scalar(self):
        fam = PStableLSH(dim=8, w=2.0, p=1)
        dists = np.array([0.0, 0.5, 1.0, 5.0])
        batch = fam.collision_probability_batch(dists)
        for i, c in enumerate(dists):
            assert batch[i] == pytest.approx(fam.collision_probability(float(c)))

    def test_integer_hash_values(self):
        fam = PStableLSH(dim=8, w=1.5, p=2, seed=5)
        values = fam.sample(k=3).hash_matrix(RNG.normal(size=(10, 8)))
        assert values.dtype == np.int64


class TestMinHash:
    def test_collision_probability_is_similarity(self):
        fam = MinHashLSH(dim=16)
        assert fam.collision_probability(0.25) == pytest.approx(0.75)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            MinHashLSH(dim=8).collision_probability(1.5)

    def test_empirical_matches_theory(self):
        fam = MinHashLSH(dim=40, seed=0)
        x = (RNG.random(40) < 0.4).astype(np.uint8)
        y = x.copy()
        flips = RNG.choice(40, size=8, replace=False)
        y[flips] ^= 1
        theory = fam.collision_probability(jaccard_distance(x, y))
        empirical = empirical_collision_rate(fam, x, y, trials=3000)
        assert abs(empirical - theory) < 0.05

    def test_identical_sets_always_collide(self):
        fam = MinHashLSH(dim=20, seed=1)
        g = fam.sample(k=10)
        x = (RNG.random(20) < 0.5).astype(np.uint8)
        assert np.array_equal(g.hash_one(x), g.hash_one(x.copy()))

    def test_empty_set_sentinel(self):
        fam = MinHashLSH(dim=10, seed=2)
        g = fam.sample(k=3)
        empty = np.zeros(10, dtype=np.uint8)
        values = g.hash_one(empty)
        assert np.all(values == np.iinfo(np.int64).max)


class TestFamilyForMetric:
    @pytest.mark.parametrize(
        "metric,expected",
        [
            ("hamming", BitSamplingLSH),
            ("cosine", SimHashLSH),
            ("jaccard", MinHashLSH),
        ],
    )
    def test_simple_metrics(self, metric, expected):
        assert isinstance(family_for_metric(metric, dim=8), expected)

    def test_l1_is_cauchy(self):
        fam = family_for_metric("l1", dim=8, w=2.0)
        assert isinstance(fam, PStableLSH)
        assert fam.p == 1

    def test_l2_is_gaussian(self):
        fam = family_for_metric("l2", dim=8, w=2.0)
        assert isinstance(fam, PStableLSH)
        assert fam.p == 2

    def test_alias_resolution(self):
        assert isinstance(family_for_metric("euclidean", dim=4, w=1.0), PStableLSH)

    def test_unknown_metric(self):
        with pytest.raises(UnknownMetricError):
            family_for_metric("nope", dim=4)

    def test_invalid_dim(self):
        with pytest.raises(ConfigurationError):
            SimHashLSH(dim=0)

    def test_p1_alias(self):
        fam = SimHashLSH(dim=8)
        assert fam.p1(0.3) == fam.collision_probability(0.3)

    def test_metric_property(self):
        assert family_for_metric("cosine", dim=4).metric.name == "cosine"
