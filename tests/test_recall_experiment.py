"""Tests for the recall experiment (the paper's omitted result)."""

import pytest

from repro.core import CostModel
from repro.datasets import webspam_like
from repro.evaluation import recall_experiment
from repro.evaluation.report import format_recall


@pytest.fixture(scope="module")
def rows():
    dataset = webspam_like(n=1200, seed=0)
    return recall_experiment(
        dataset,
        radii=(0.06, 0.1),
        num_queries=20,
        num_tables=12,
        cost_model=CostModel.from_ratio(10.0),
        seed=0,
    )


class TestRecallExperiment:
    def test_row_count(self, rows):
        assert len(rows) == 2

    def test_recalls_in_unit_interval(self, rows):
        for row in rows:
            assert 0.0 <= row.lsh_recall <= 1.0
            assert 0.0 <= row.hybrid_recall <= 1.0
            assert 0.0 <= row.analytic_recall <= 1.0

    def test_hybrid_dominates_lsh(self, rows):
        """The paper's claim: linear fallbacks can only add true neighbors."""
        for row in rows:
            assert row.hybrid_recall >= row.lsh_recall - 1e-9

    def test_lsh_tracks_analytic(self, rows):
        for row in rows:
            assert abs(row.lsh_recall - row.analytic_recall) < 0.2

    def test_linear_fraction_bounds(self, rows):
        for row in rows:
            assert 0.0 <= row.linear_call_fraction <= 1.0

    def test_format(self, rows):
        text = format_recall(rows, title="test")
        assert "Hybrid recall" in text
        assert "Analytic" in text
        assert text.startswith("test")
