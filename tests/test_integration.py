"""Cross-module integration tests: the paper's claims at small scale."""

import numpy as np
import pytest

from repro.core import CostModel, HybridSearcher, LinearScan, LSHSearch, Strategy
from repro.core.presets import paper_parameters
from repro.datasets import mnist_like, split_queries, webspam_like
from repro.evaluation import GroundTruth, mean_recall
from repro.evaluation.experiments import build_paper_index
from repro.index import LSHIndex


class TestHybridMatchesBetterStrategy:
    """Algorithm 2's core promise: per query, hybrid pays (almost) the
    cheaper of the two pure strategies' costs."""

    @pytest.fixture(scope="class")
    def webspam_setup(self):
        ds = webspam_like(n=2500, seed=1)
        data, queries = split_queries(ds.points, num_queries=30, seed=1)
        # L = 40 keeps the test fast while preserving the collision
        # volume that makes farm-core queries route to linear search.
        index = build_paper_index(data, "cosine", radius=0.08, num_tables=40, seed=1)
        model = CostModel.from_ratio(10.0)
        return data, queries, index, model

    def test_hard_queries_route_to_linear(self, webspam_setup):
        """Queries whose collision volume rivals n must go linear."""
        data, queries, index, model = webspam_setup
        hybrid = HybridSearcher(index, model)
        n = data.shape[0]
        for q in queries:
            stats = hybrid.query(q, radius=0.08).stats
            # Whenever collisions alone exceed the linear budget
            # (alpha * collisions > beta * n), hybrid must not run LSH.
            if model.alpha * stats.num_collisions > model.linear_cost(n):
                assert stats.strategy == Strategy.LINEAR

    def test_hybrid_recall_at_least_lsh_recall(self, webspam_setup):
        """Linear fallbacks are exact, so hybrid recall >= LSH recall."""
        data, queries, index, model = webspam_setup
        truth = GroundTruth(data, queries, "cosine")
        hybrid = HybridSearcher(index, model)
        lsh = LSHSearch(index)
        radius = 0.08
        truth_sets = truth.neighbor_sets(radius)
        hybrid_recall = mean_recall([hybrid.query(q, radius).ids for q in queries], truth_sets)
        lsh_recall = mean_recall([lsh.query(q, radius).ids for q in queries], truth_sets)
        assert hybrid_recall >= lsh_recall - 1e-9

    def test_mixed_workload_has_both_strategies(self, webspam_setup):
        """Webspam-like data produces both easy and hard queries."""
        data, queries, index, model = webspam_setup
        hybrid = HybridSearcher(index, model)
        strategies = {hybrid.query(q, radius=0.08).stats.strategy for q in queries}
        assert strategies == {Strategy.LSH, Strategy.LINEAR}

    def test_estimated_cost_tracks_real_candidates(self, webspam_setup):
        """candSize estimates stay within the HLL error envelope."""
        data, queries, index, _ = webspam_setup
        errors = []
        for q in queries[:15]:
            lookup = index.lookup(q)
            exact = index.candidate_ids(lookup).size
            if exact < 10:
                continue
            estimate = index.merged_sketch(lookup).estimate()
            errors.append(abs(estimate - exact) / exact)
        assert errors, "expected some queries with candidates"
        assert float(np.mean(errors)) < 0.2


class TestMnistPipeline:
    """The full MNIST path: images -> fingerprints -> bit sampling."""

    def test_end_to_end(self):
        ds = mnist_like(n=1500, seed=2)
        data, queries = split_queries(ds.points, num_queries=20, seed=2)
        index = build_paper_index(data, "hamming", radius=14.0, num_tables=15, seed=2)
        hybrid = HybridSearcher(index, CostModel.from_ratio(1.0))
        scan = LinearScan(data, "hamming")
        found_any = 0
        for q in queries:
            result = hybrid.query(q, radius=14.0)
            exact = scan.query(q, radius=14.0)
            assert set(result.ids.tolist()) <= set(exact.ids.tolist())
            found_any += result.output_size
        assert found_any > 0

    def test_same_class_images_are_neighbors(self):
        ds = mnist_like(n=1000, seed=3)
        labels = ds.extras["labels"]
        scan = LinearScan(ds.points, "hamming")
        hits = []
        for i in range(20):
            result = scan.query(ds.points[i], radius=float(max(ds.radii)))
            neighbor_labels = labels[result.ids]
            if result.output_size > 1:
                hits.append(float(np.mean(neighbor_labels == labels[i])))
        # Mean purity must far exceed the 1/num_classes = 5% base rate.
        assert hits and np.mean(hits) > 0.5


class TestDeltaGuaranteeAcrossFamilies:
    """Definition 1: each near point reported with prob >= 1 - delta
    (up to the documented ceil-rule slack)."""

    @pytest.mark.parametrize("metric,radius", [("cosine", 0.3), ("hamming", 5.0)])
    def test_reporting_probability(self, metric, radius, rng):
        if metric == "cosine":
            points = rng.normal(size=(400, 24))
        else:
            base = rng.integers(0, 2, size=24)
            flips = rng.random(size=(400, 24)) < 0.08
            points = (base ^ flips).astype(np.uint8)
        params = paper_parameters(metric, dim=24, radius=radius, num_tables=20, delta=0.1, seed=0)
        index = LSHIndex(params.family, k=params.k, num_tables=20).build(points)
        searcher = LSHSearch(index)
        scan = LinearScan(points, metric)
        queries = points[:30]
        truth = [scan.query(q, radius).ids for q in queries]
        reported = [searcher.query(q, radius).ids for q in queries]
        measured = mean_recall(reported, truth)
        assert measured >= 0.75  # 1 - delta = 0.9 target, ceil-rule slack


class TestSeededReproducibility:
    def test_full_pipeline_deterministic(self):
        from repro.core import HybridLSH

        rng = np.random.default_rng(0)
        points = rng.normal(size=(500, 16))

        def run():
            searcher = HybridLSH(
                points, metric="l2", radius=1.0, num_tables=8,
                cost_model=CostModel.from_ratio(6.0), seed=42,
            )
            return [searcher.query(points[i]).ids.tolist() for i in range(5)]

        assert run() == run()
