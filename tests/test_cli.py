"""Tests for the command-line interface (tiny scales)."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main([
            "table1", "--datasets", "corel", "--n", "800",
            "--queries", "10", "--tables", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "corel-like" in out
        assert "% Cost" in out

    def test_figure2(self, capsys):
        assert main([
            "figure2", "--dataset", "mnist", "--n", "800",
            "--queries", "8", "--tables", "6", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "Hybrid (s)" in out
        assert "mnist-like" in out

    def test_figure3(self, capsys):
        assert main([
            "figure3", "--n", "800", "--queries", "10", "--tables", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "%LS calls" in out

    def test_profile(self, capsys):
        assert main([
            "profile", "--dataset", "webspam", "--n", "800", "--queries", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "suggested sweep" in out
        assert "hardness at r" in out

    def test_recall(self, capsys):
        assert main([
            "recall", "--dataset", "corel", "--n", "800",
            "--queries", "8", "--tables", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "Hybrid recall" in out
        assert "Analytic" in out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure2", "--dataset", "nope"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
