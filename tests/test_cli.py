"""Tests for the command-line interface (tiny scales)."""

import io
import json
import os
import signal
import subprocess
import sys

import pytest

from repro.cli import main

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


class TestCli:
    def test_table1(self, capsys):
        assert main([
            "table1", "--datasets", "corel", "--n", "800",
            "--queries", "10", "--tables", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "corel-like" in out
        assert "% Cost" in out

    def test_figure2(self, capsys):
        assert main([
            "figure2", "--dataset", "mnist", "--n", "800",
            "--queries", "8", "--tables", "6", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "Hybrid (s)" in out
        assert "mnist-like" in out

    def test_figure3(self, capsys):
        assert main([
            "figure3", "--n", "800", "--queries", "10", "--tables", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "%LS calls" in out

    def test_profile(self, capsys):
        assert main([
            "profile", "--dataset", "webspam", "--n", "800", "--queries", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "suggested sweep" in out
        assert "hardness at r" in out

    def test_recall(self, capsys):
        assert main([
            "recall", "--dataset", "corel", "--n", "800",
            "--queries", "8", "--tables", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "Hybrid recall" in out
        assert "Analytic" in out

    def test_throughput(self, capsys, tmp_path):
        artifact = tmp_path / "tp.json"
        assert main([
            "throughput", "--n", "900", "--queries", "12", "--tables", "6",
            "--shards", "2", "--json", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "QPS" in out and "sequential" in out and "batched" in out
        payload = json.loads(artifact.read_text())
        assert set(payload["modes"]) == {
            "sequential", "batched", "frozen_batched", "frozen_batched_traced",
            "sharded",
        }
        assert payload["modes"]["batched"]["matches_reference"] is True
        assert payload["modes"]["frozen_batched"]["matches_reference"] is True
        # Tracing is timing-only: the traced run answers identically and
        # every mode records ordered single-query latency percentiles.
        assert payload["modes"]["frozen_batched_traced"]["matches_reference"] is True
        for mode in payload["modes"].values():
            assert mode["latency_p50"] <= mode["latency_p95"] <= mode["latency_p99"]

    def test_serve(self, capsys, monkeypatch):
        from repro.datasets import corel_like

        dataset = corel_like(n=400, seed=0)
        lines = [
            json.dumps({"query": dataset.points[0].tolist()}),
            json.dumps({"query": [1.0, 2.0]}),
            json.dumps({"op": "stats"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main([
            "serve", "--dataset", "corel", "--n", "400",
            "--tables", "4", "--cache-size", "16",
        ]) == 0
        captured = capsys.readouterr()
        assert "serving corel-like" in captured.err
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert 0 in responses[0]["ids"]
        assert "error" in responses[1]
        assert responses[2]["queries_served"] == 1

    def test_serve_stats_interval_writes_jsonl_log(self, capsys, monkeypatch, tmp_path):
        from repro.datasets import corel_like

        dataset = corel_like(n=400, seed=0)
        lines = [
            json.dumps({"query": dataset.points[0].tolist()}),
            json.dumps({"op": "metrics"}),
        ]
        log = tmp_path / "stats.jsonl"
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        # A long interval never fires mid-run; the reporter still emits
        # one final snapshot line at shutdown, which is what we assert.
        assert main([
            "serve", "--dataset", "corel", "--n", "400", "--tables", "4",
            "--stats-interval", "30", "--stats-log", str(log),
        ]) == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert "repro_queries_served_total 1" in responses[1]["metrics"]
        snapshots = [json.loads(line) for line in log.read_text().splitlines()]
        assert snapshots, "stats reporter wrote no snapshot lines"
        final = snapshots[-1]
        assert final["queries_served"] == 1
        assert final["latency"]["count"] == 1
        assert "ts" in final

    def test_build_then_serve_saved_index(self, capsys, monkeypatch, tmp_path):
        from repro.datasets import corel_like

        out = str(tmp_path / "cli-index")
        assert main([
            "build", "--dataset", "corel", "--n", "300",
            "--tables", "4", "--shards", "2", "--out", out,
        ]) == 0
        capsys.readouterr()
        dataset = corel_like(n=300, seed=0)
        lines = [
            json.dumps({"query": dataset.points[0].tolist()}),
            json.dumps({"op": "spec"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", "--index", out]) == 0
        responses = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert 0 in responses[0]["ids"]
        assert responses[1]["spec"]["num_shards"] == 2

    def test_serve_index_rejects_conflicting_build_flags(self, tmp_path):
        """--index serves the saved spec; silently ignoring --cache-size
        etc. would serve a different policy than the operator asked for."""
        with pytest.raises(SystemExit, match="cache-size"):
            main(["serve", "--index", str(tmp_path / "x"), "--cache-size", "64"])

    def test_serve_sharded(self, capsys, monkeypatch):
        from repro.datasets import corel_like

        dataset = corel_like(n=300, seed=0)
        request = json.dumps({"query": dataset.points[5].tolist()})
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main([
            "serve", "--dataset", "corel", "--n", "300",
            "--tables", "4", "--shards", "2",
        ]) == 0
        captured = capsys.readouterr()
        assert 5 in json.loads(captured.out.splitlines()[0])["ids"]

    def test_line_stream_probe_sees_buffered_burst(self):
        """A keep-alive client's burst must be visible to the backlog
        probe even once it sits in the reader's buffer, so serve keeps
        micro-batching instead of degrading to per-line answers."""
        import os

        from repro.cli import _line_stream_with_probe

        read_fd, write_fd = os.pipe()
        try:
            with open(read_fd, closefd=False) as stdin:
                os.write(write_fd, b"one\ntwo\nthree\n")
                lines, more_ready = _line_stream_with_probe(stdin)
                assert next(lines) == "one\n"
                # The burst now lives in the internal buffer, not the fd.
                assert more_ready() is True
                assert next(lines) == "two\n"
                assert more_ready() is True
                assert next(lines) == "three\n"
                assert more_ready() is False  # idle client: flush now
                os.close(write_fd)
                write_fd = -1
                assert list(lines) == []
        finally:
            if write_fd >= 0:
                os.close(write_fd)
            os.close(read_fd)

    def test_line_stream_probe_without_fd_falls_back(self):
        from repro.cli import _line_stream_with_probe

        source = io.StringIO("a\nb\n")
        lines, more_ready = _line_stream_with_probe(source)
        assert more_ready is None
        assert lines is source

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure2", "--dataset", "nope"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliFailurePaths:
    """Misbehaving input must degrade per line (serve) or exit with a
    clear non-zero status (build), never a traceback or a dead stream."""

    def _serve(self, monkeypatch, capsys, lines, argv=None):
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(
            ["serve", "--dataset", "corel", "--n", "300", "--tables", "4"]
            + (argv or [])
        ) == 0
        return [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]

    def test_serve_survives_malformed_and_partial_json(self, capsys, monkeypatch):
        from repro.datasets import corel_like

        dataset = corel_like(n=300, seed=0)
        good = json.dumps({"query": dataset.points[0].tolist()})
        lines = [
            "this is not json",
            '{"query": [0.1, 0.2',          # truncated mid-object
            '["query"]',                     # valid JSON, wrong shape
            good,                            # the stream must still serve
        ]
        responses = self._serve(monkeypatch, capsys, lines)
        assert len(responses) == len(lines)
        for bad in responses[:3]:
            assert set(bad) == {"error"}
            assert bad["error"].startswith("bad request:")
        assert 0 in responses[3]["ids"]

    def test_serve_survives_unknown_op(self, capsys, monkeypatch):
        from repro.datasets import corel_like

        dataset = corel_like(n=300, seed=0)
        good = json.dumps({"query": dataset.points[0].tolist()})
        responses = self._serve(
            monkeypatch, capsys,
            [json.dumps({"op": "explode"}), json.dumps({"op": "insert"}), good],
        )
        assert "error" in responses[0]
        assert "unknown request" in responses[0]["error"]
        assert "error" in responses[1]  # insert without points
        assert 0 in responses[2]["ids"]

    def test_serve_concurrent_loop_survives_malformed_lines(self, capsys, monkeypatch):
        """The --inflight > 1 reader-thread loop has its own parse path."""
        from repro.datasets import corel_like

        dataset = corel_like(n=300, seed=0)
        good = json.dumps({"query": dataset.points[0].tolist()})
        responses = self._serve(
            monkeypatch, capsys,
            ["{{nope", good, json.dumps({"op": "bogus"}), good],
            argv=["--inflight", "3"],
        )
        assert len(responses) == 4
        assert "error" in responses[0]
        assert 0 in responses[1]["ids"]
        assert "error" in responses[2]
        assert 0 in responses[3]["ids"]

    def test_build_bad_layout_exits_nonzero(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "build", "--dataset", "corel", "--n", "300",
                "--layout", "zip", "--out", str(tmp_path / "x"),
            ])
        assert excinfo.value.code == 2  # argparse: invalid choice
        assert "invalid choice" in capsys.readouterr().err

    def test_build_bad_dataset_exits_nonzero(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "build", "--dataset", "imagenet", "--out", str(tmp_path / "x"),
            ])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_build_covering_on_wrong_metric_exits_with_message(self, tmp_path):
        """Semantic misconfiguration (not an argparse choice error) must
        exit non-zero with the validation message, not a traceback."""
        with pytest.raises(SystemExit, match="hamming"):
            main([
                "build", "--dataset", "corel", "--n", "300",
                "--variant", "covering", "--out", str(tmp_path / "x"),
            ])

    def test_build_processes_without_frozen_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit, match="frozen"):
            main([
                "build", "--dataset", "corel", "--n", "300",
                "--execution", "processes", "--out", str(tmp_path / "x"),
            ])


class TestCliVariants:
    def test_build_then_serve_frozen_multiprobe(self, capsys, monkeypatch, tmp_path):
        from repro.datasets import corel_like

        out = str(tmp_path / "mp-index")
        assert main([
            "build", "--dataset", "corel", "--n", "300", "--tables", "4",
            "--layout", "frozen", "--variant", "multiprobe", "--probes", "3",
            "--out", out,
        ]) == 0
        capsys.readouterr()
        dataset = corel_like(n=300, seed=0)
        lines = [
            json.dumps({"op": "spec"}),
            json.dumps({"query": dataset.points[3].tolist()}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", "--index", out]) == 0
        responses = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert responses[0]["spec"]["variant"] == "multiprobe"
        assert responses[0]["spec"]["num_probes"] == 3
        assert 3 in responses[1]["ids"]

    def test_build_then_serve_frozen_covering(self, capsys, monkeypatch, tmp_path):
        from repro.datasets import mnist_like

        out = str(tmp_path / "cov-index")
        assert main([
            "build", "--dataset", "mnist", "--n", "300",
            "--layout", "frozen", "--variant", "covering", "--out", out,
        ]) == 0
        capsys.readouterr()
        dataset = mnist_like(n=300, seed=0)
        lines = [
            json.dumps({"op": "spec"}),
            json.dumps({"query": dataset.points[3].tolist()}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", "--index", out]) == 0
        responses = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert responses[0]["spec"]["variant"] == "covering"
        assert 3 in responses[1]["ids"]

    def test_throughput_allow_partial_requires_processes(self):
        with pytest.raises(SystemExit, match="processes"):
            main([
                "throughput", "--n", "600", "--queries", "8", "--tables", "4",
                "--allow-partial",
            ])

    def test_throughput_allow_partial_stays_bit_identical(self, capsys, tmp_path):
        """On a healthy pool the flag only charges bookkeeping."""
        artifact = tmp_path / "tp.json"
        assert main([
            "throughput", "--n", "700", "--queries", "10", "--tables", "4",
            "--shards", "2", "--execution", "processes", "--allow-partial",
            "--json", str(artifact),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["modes"]["workers"]["matches_reference"] is True

    def test_throughput_multiprobe_gate(self, capsys, tmp_path):
        artifact = tmp_path / "tp.json"
        assert main([
            "throughput", "--n", "900", "--queries", "12", "--tables", "6",
            "--shards", "2", "--include-multiprobe", "--probes", "2",
            "--json", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "frozen_multiprobe" in out
        payload = json.loads(artifact.read_text())
        assert "frozen_multiprobe" in payload["modes"]
        assert payload["modes"]["frozen_multiprobe"]["matches_reference"] is True


def _spawn_shard_server(artifact, shards=None):
    """Launch ``repro.cli shard-serve`` and parse its startup banner."""
    argv = [sys.executable, "-m", "repro.cli", "shard-serve", "--artifact", artifact]
    if shards is not None:
        argv += ["--shards", shards]
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(argv, stdout=subprocess.PIPE, env=env, text=True)
    line = proc.stdout.readline()
    if not line:
        proc.wait(timeout=10)
        raise RuntimeError(f"shard-serve exited {proc.returncode} without a banner")
    return proc, json.loads(line)


class TestCliNetworked:
    """shard-serve / loadgen / serve --connect: the deployment surface."""

    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("cli-net") / "idx")
        assert main([
            "build", "--dataset", "corel", "--n", "300", "--tables", "4",
            "--shards", "2", "--layout", "frozen",
            "--execution", "processes", "--out", out,
        ]) == 0
        return out

    def test_loadgen_reports_tail_latency(self, artifact, capsys, tmp_path):
        report = tmp_path / "latency.json"
        assert main([
            "loadgen", "--index", artifact, "--rate", "80",
            "--duration", "0.5", "--json", str(report),
        ]) == 0
        err = capsys.readouterr().err
        assert "loadgen:" in err and "p99" in err
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro-loadgen/1"
        assert doc["requests"] > 0
        assert doc["failures"] == 0
        latency = doc["latency"]
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert "samples" not in doc  # dropped unless --samples

    def test_shard_serve_banner_loadgen_connect_and_serve_connect(
        self, artifact, capsys, monkeypatch, tmp_path
    ):
        from repro.datasets import corel_like

        proc, banner = _spawn_shard_server(artifact)
        try:
            assert banner["shards"] == [0, 1]
            assert banner["pid"] == proc.pid
            endpoint = f"{banner['host']}:{banner['port']}"
            report = tmp_path / "tcp-latency.json"
            assert main([
                "loadgen", "--index", artifact, "--connect", endpoint,
                "--rate", "60", "--duration", "0.5", "--json", str(report),
            ]) == 0
            capsys.readouterr()
            doc = json.loads(report.read_text())
            assert doc["requests"] > 0 and doc["failures"] == 0
            # The same endpoint serves the JSON-lines protocol too.
            dataset = corel_like(n=300, seed=0)
            request = json.dumps({"query": dataset.points[0].tolist()})
            monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
            assert main([
                "serve", "--index", artifact, "--connect", endpoint,
            ]) == 0
            out = capsys.readouterr().out
            assert 0 in json.loads(out.splitlines()[0])["ids"]
            # SIGINT shuts the server down cleanly.
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=10) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_shard_serve_rejects_bad_shard_lists(self, artifact):
        with pytest.raises(SystemExit, match="comma-separated"):
            main(["shard-serve", "--artifact", artifact, "--shards", "x"])
        with pytest.raises(SystemExit, match="out of range"):
            main(["shard-serve", "--artifact", artifact, "--shards", "9"])

    def test_serve_connect_requires_index(self):
        with pytest.raises(SystemExit, match="--index"):
            main(["serve", "--connect", "127.0.0.1:1"])

    def test_serve_allow_partial_stays_clean_on_a_healthy_pool(
        self, artifact, capsys, monkeypatch
    ):
        from repro.datasets import corel_like

        dataset = corel_like(n=300, seed=0)
        request = json.dumps({"query": dataset.points[0].tolist()})
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main([
            "serve", "--index", artifact, "--allow-partial",
        ]) == 0
        response = json.loads(capsys.readouterr().out.splitlines()[0])
        assert 0 in response["ids"]
        # The v2 envelope always carries the degraded flag; a healthy
        # pool reports it explicitly false with no missing shards.
        assert response["degraded"] is False
        assert response["missing_shards"] == []
