"""Frozen CSR layout: bit-identical to the dict layout, mmap round-trip.

The frozen layout's contract is *exact agreement* with the dict layout
it was frozen from — every query-side primitive, every engine above it,
before and after inserts, and across a save/``np.load(mmap_mode="r")``
reopen.  These tests assert that contract at the bit level and pin the
structural properties (CSR consistency, overflow re-freeze, zero-copy
persistence) the serving path relies on.
"""

import json

import numpy as np
import pytest

from repro.core import CostModel, HybridSearcher
from repro.exceptions import ConfigurationError
from repro.hashing import PStableLSH, SimHashLSH
from repro.index import FrozenLSHIndex, LSHIndex, MultiProbeLSHIndex
from repro.index.frozen import load_frozen_index, save_frozen_index
from repro.service import BatchQueryEngine


def build_pair(n=600, dim=12, k=3, num_tables=8, lazy_threshold=None, seed=3):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, dim))
    index = LSHIndex(
        PStableLSH(dim, w=2.0),
        k=k,
        num_tables=num_tables,
        lazy_threshold=lazy_threshold,
        seed=seed,
    ).build(points)
    return points, index, index.freeze()


def assert_results_equal(a, b):
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.distances, b.distances)
    assert a.stats.strategy == b.stats.strategy
    assert a.stats.num_collisions == b.stats.num_collisions
    assert a.stats.exact_candidates == b.stats.exact_candidates
    if a.stats.estimated_candidates == a.stats.estimated_candidates:  # not nan
        assert a.stats.estimated_candidates == b.stats.estimated_candidates
        assert a.stats.estimated_lsh_cost == b.stats.estimated_lsh_cost


class TestFrozenPrimitives:
    def test_lookup_and_collisions_match(self):
        points, index, frozen = build_pair()
        rng = np.random.default_rng(0)
        queries = np.concatenate([rng.normal(size=(10, 12)), points[:5]])
        for q in queries:
            assert index.lookup(q).num_collisions == frozen.lookup(q).num_collisions
        batch_a = index.lookup_batch(queries)
        batch_b = frozen.lookup_batch(queries)
        for la, lb in zip(batch_a, batch_b):
            assert la.num_collisions == lb.num_collisions

    def test_lookup_bucket_views_keep_member_dtype(self):
        """Frozen bucket views expose ids in the stored ``intp`` dtype.

        The members contract is ``np.intp`` (every consumer is a fancy
        index); re-materialising a slice under another integer dtype is
        the silent platform-equal drift the dtype-contract lint exists
        to catch — pin it at runtime too.
        """
        points, index, frozen = build_pair()
        views = frozen.lookup(points[0]).nonempty_buckets()
        assert views
        for view in views:
            assert np.asarray(view.ids).dtype == np.intp

    def test_candidates_both_dedups_match(self):
        points, index, frozen = build_pair()
        rng = np.random.default_rng(1)
        for q in np.concatenate([rng.normal(size=(8, 12)), points[:4]]):
            la, lb = index.lookup(q), frozen.lookup(q)
            for dedup in ("scalar", "vectorized"):
                assert np.array_equal(
                    index.candidate_ids(la, dedup=dedup),
                    frozen.candidate_ids(lb, dedup=dedup),
                )

    def test_candidate_ids_batch_matches_loop(self):
        points, index, frozen = build_pair()
        rng = np.random.default_rng(7)
        queries = np.concatenate(
            [rng.normal(size=(6, 12)), points[:3], points[:3]]  # duplicates share
        )
        lookups = frozen.lookup_batch(queries)
        batch = frozen.candidate_ids_batch(lookups, dedup="vectorized")
        for lk, cands in zip(lookups, batch):
            assert np.array_equal(cands, frozen.candidate_ids(lk, dedup="vectorized"))

    @pytest.mark.parametrize("lazy_threshold", [None, 0, 4])
    def test_sketches_and_estimates_match(self, lazy_threshold):
        points, index, frozen = build_pair(lazy_threshold=lazy_threshold)
        rng = np.random.default_rng(2)
        queries = np.concatenate([rng.normal(size=(8, 12)), points[:4]])
        for q in queries:
            la, lb = index.lookup(q), frozen.lookup(q)
            assert np.array_equal(
                index.merged_sketch(la).registers, frozen.merged_sketch(lb).registers
            )
            assert index.estimate_candidates(la) == frozen.estimate_candidates(lb)
        batch_a = index.lookup_batch(queries)
        batch_b = frozen.lookup_batch(queries)
        assert np.array_equal(
            index.merged_estimates_batch(batch_a),
            frozen.merged_estimates_batch(batch_b),
        )

    def test_csr_structure_is_consistent(self):
        _, index, frozen = build_pair()
        csr = frozen.frozen
        assert csr.num_tables == index.num_tables
        assert int(csr.table_slices[-1]) == sum(t.num_buckets for t in index.tables)
        assert int(csr.offsets[-1]) == csr.members.size
        assert np.array_equal(np.diff(csr.offsets), csr.sizes)
        # Keys sorted within each table segment.
        for t in range(csr.num_tables):
            lo, hi = int(csr.table_slices[t]), int(csr.table_slices[t + 1])
            segment = csr.keys[lo:hi]
            assert np.array_equal(np.sort(segment), segment)

    def test_diagnostics_match_dict_layout(self):
        _, index, frozen = build_pair(lazy_threshold=4)
        a, b = index.bucket_statistics(), frozen.bucket_statistics()
        assert a == b
        assert frozen.sketch_memory_bytes == index.sketch_memory_bytes
        report = frozen.memory_report()
        assert report["points"] == index.memory_report()["points"]
        assert report["sketches"] == index.memory_report()["sketches"]


class TestFrozenSearch:
    def test_hybrid_queries_bit_identical(self):
        points, index, frozen = build_pair()
        cm = CostModel.from_ratio(6.0)
        a = HybridSearcher(index, cm)
        b = HybridSearcher(frozen, cm)
        rng = np.random.default_rng(3)
        queries = np.concatenate([rng.normal(size=(10, 12)), points[:5]])
        for q in queries:
            assert_results_equal(a.query(q, 1.5), b.query(q, 1.5))
        for ra, rb in zip(a.query_batch(queries, 1.5), b.query_batch(queries, 1.5)):
            assert_results_equal(ra, rb)

    def test_batch_engine_matches_sequential_dict(self):
        points, index, frozen = build_pair(n=900)
        cm = CostModel.from_ratio(6.0)
        sequential = HybridSearcher(index, cm)
        engine = BatchQueryEngine(HybridSearcher(frozen, cm), radius=1.5)
        rng = np.random.default_rng(4)
        queries = np.concatenate([rng.normal(size=(12, 12)), points[:6]])
        batch = engine.query_batch(queries)
        for q, rb in zip(queries, batch):
            assert_results_equal(sequential.query(q, 1.5), rb)

    def test_insert_overflow_and_refreeze_bit_identical(self):
        points, index, frozen = build_pair()
        rng = np.random.default_rng(5)
        new = rng.normal(size=(30, 12))
        assert np.array_equal(index.insert(new), frozen.insert(new))
        assert frozen.overflow_count == 30
        queries = np.concatenate([rng.normal(size=(8, 12)), new[:4], points[:4]])
        cm = CostModel.from_ratio(6.0)
        a, b = HybridSearcher(index, cm), HybridSearcher(frozen, cm)
        for q in queries:
            assert_results_equal(a.query(q, 1.5), b.query(q, 1.5))
        frozen.refreeze()
        assert frozen.overflow_count == 0
        for q in queries:
            assert_results_equal(a.query(q, 1.5), b.query(q, 1.5))

    def test_auto_refreeze_past_threshold(self):
        points, index, _ = build_pair()
        frozen = index.freeze(refreeze_threshold=8)
        rng = np.random.default_rng(6)
        frozen.insert(rng.normal(size=(9, 12)))
        # Compaction runs in a background thread (double-buffered);
        # after it lands, both generations are folded into the arrays.
        frozen.wait_for_refreeze()
        assert frozen.overflow_count == 0  # compacted automatically
        assert all(not t.buckets for t in frozen.tables)

    def test_auto_refreeze_inline_when_background_disabled(self):
        points, index, _ = build_pair()
        frozen = index.freeze(refreeze_threshold=8)
        frozen.background_refreeze = False
        rng = np.random.default_rng(6)
        frozen.insert(rng.normal(size=(9, 12)))
        assert frozen.overflow_count == 0  # compacted on the insert itself
        assert all(not t.buckets for t in frozen.tables)


class TestFrozenGuards:
    def test_freeze_requires_built_index(self):
        index = LSHIndex(SimHashLSH(8, seed=1), k=2, num_tables=3)
        with pytest.raises(Exception):
            index.freeze()

    def test_freeze_rejects_unknown_subclasses(self):
        """Built-in variants freeze (multi-probe since PR 5); a custom
        subclass with an unknown query surface still must not."""
        rng = np.random.default_rng(0)
        points = rng.normal(size=(100, 8))
        probe = MultiProbeLSHIndex(
            SimHashLSH(8, seed=1), k=2, num_tables=3, num_probes=1, seed=2
        ).build(points)
        assert probe.freeze().variant == "multiprobe"

        class CustomIndex(LSHIndex):
            pass

        custom = CustomIndex(SimHashLSH(8, seed=1), k=2, num_tables=3).build(points)
        with pytest.raises(ConfigurationError):
            custom.freeze()

    def test_frozen_rejects_rebuild(self):
        _, _, frozen = build_pair(n=100)
        with pytest.raises(ConfigurationError):
            frozen.build(np.zeros((4, 12)))

    def test_dict_serializer_rejects_frozen(self):
        from repro.index.serialize import save_index

        _, _, frozen = build_pair(n=100)
        with pytest.raises(ConfigurationError):
            save_index(frozen, "/tmp/should-not-exist.npz")


class TestFrozenPersistence:
    def test_roundtrip_is_mmap_backed_and_identical(self, tmp_path):
        points, _, frozen = build_pair(lazy_threshold=4)
        path = str(tmp_path / "frozen-index")
        save_frozen_index(frozen, path)
        loaded = load_frozen_index(path)
        for array in (loaded.points, loaded.frozen.members, loaded.frozen.registers):
            assert isinstance(array, np.memmap)
        rng = np.random.default_rng(8)
        queries = np.concatenate([rng.normal(size=(6, 12)), points[:4]])
        cm = CostModel.from_ratio(6.0)
        a, b = HybridSearcher(frozen, cm), HybridSearcher(loaded, cm)
        for q in queries:
            assert_results_equal(a.query(q, 1.5), b.query(q, 1.5))

    def test_save_compacts_overflow_first(self, tmp_path):
        points, _, frozen = build_pair()
        rng = np.random.default_rng(9)
        frozen.insert(rng.normal(size=(5, 12)))
        path = str(tmp_path / "compacted")
        save_frozen_index(frozen, path)
        assert frozen.overflow_count == 0
        loaded = load_frozen_index(path)
        assert loaded.n == points.shape[0] + 5
        q = points[0]
        assert np.array_equal(
            frozen.candidate_ids(frozen.lookup(q)),
            loaded.candidate_ids(loaded.lookup(q)),
        )

    def test_resave_to_same_path_keeps_artifact_intact(self, tmp_path):
        """open -> save back to the same directory must not corrupt it.

        The loaded arrays are memory-mapped from the very files being
        rewritten; the saver must never truncate a mapped source.
        """
        points, _, frozen = build_pair(n=150)
        path = str(tmp_path / "self-save")
        save_frozen_index(frozen, path)
        loaded = load_frozen_index(path)
        save_frozen_index(loaded, path)  # would crash/corrupt if in-place
        reloaded = load_frozen_index(path)
        q = points[1]
        assert np.array_equal(
            frozen.candidate_ids(frozen.lookup(q)),
            reloaded.candidate_ids(reloaded.lookup(q)),
        )

    def test_mixed_shard_layouts_rejected_before_writing(self, tmp_path):
        from repro.api import Index, IndexSpec

        rng = np.random.default_rng(13)
        points = rng.normal(size=(200, 8))
        index = Index.build(
            points, IndexSpec(metric="l2", radius=1.0, num_tables=4,
                              num_shards=2, seed=1)
        )
        index.engine.shards[0].freeze()
        target = tmp_path / "mixed"
        with pytest.raises(ConfigurationError):
            index.save(str(target))
        # Nothing may have been written: a partial artifact next to a
        # stale index.json would poison a later open().
        assert not (target / "index.json").exists()
        assert not any(target.glob("shard_*"))
        index.close()

    def test_mmap_loaded_index_accepts_inserts(self, tmp_path):
        _, _, frozen = build_pair(n=120)
        path = str(tmp_path / "idx")
        save_frozen_index(frozen, path)
        loaded = load_frozen_index(path)
        rng = np.random.default_rng(10)
        ids = loaded.insert(rng.normal(size=(3, 12)))
        assert ids.tolist() == [120, 121, 122]
        assert loaded.n == 123


class TestFacadeFrozenLayout:
    @pytest.mark.parametrize("num_shards", [1, 3])
    def test_spec_layout_builds_and_roundtrips(self, num_shards, tmp_path):
        from repro.api import Index, IndexSpec, QuerySpec

        rng = np.random.default_rng(11)
        points = rng.normal(size=(400, 10))
        queries = np.concatenate([rng.normal(size=(6, 10)), points[:4]])
        spec = IndexSpec(
            metric="l2", radius=1.0, num_tables=6, num_shards=num_shards, seed=1
        )
        reference = Index.build(points, spec)
        frozen = Index.build(points, spec.with_overrides(layout="frozen"))
        for ra, rb in zip(
            reference.query_batch(queries), frozen.query_batch(queries)
        ):
            assert_results_equal(ra, rb)
        for ra, rb in zip(
            reference.query(QuerySpec(queries, k=3)),
            frozen.query(QuerySpec(queries, k=3)),
        ):
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)

        path = str(tmp_path / "saved")
        frozen.save(path)
        meta = json.loads((tmp_path / "saved" / "index.json").read_text())
        assert meta["layout"] == "frozen"
        reopened = Index.open(path)
        assert reopened.spec.layout == "frozen"
        assert reopened.cost_model == frozen.cost_model  # no recalibration
        engine_index = (
            reopened.engine.shards[0].index
            if num_shards > 1
            else reopened.engine.index
        )
        assert isinstance(engine_index, FrozenLSHIndex)
        assert isinstance(engine_index.frozen.members, np.memmap)
        for ra, rb in zip(
            frozen.query_batch(queries), reopened.query_batch(queries)
        ):
            assert_results_equal(ra, rb)
        reference.close(), frozen.close(), reopened.close()

    def test_insert_through_facade_matches_dict(self):
        from repro.api import Index, IndexSpec

        rng = np.random.default_rng(12)
        points = rng.normal(size=(300, 10))
        spec = IndexSpec(metric="l2", radius=1.0, num_tables=6, seed=2)
        a = Index.build(points, spec)
        b = Index.build(points, spec.with_overrides(layout="frozen"))
        new = rng.normal(size=(10, 10))
        assert np.array_equal(a.insert(new), b.insert(new))
        queries = np.concatenate([new[:3], points[:3]])
        for ra, rb in zip(a.query_batch(queries), b.query_batch(queries)):
            assert_results_equal(ra, rb)


class TestCliFrozenLayout:
    def test_build_serve_frozen_artifact(self, tmp_path, capsys):
        from repro.api import Index
        from repro.cli import main

        out_dir = str(tmp_path / "frozen-idx")
        assert main([
            "build", "--dataset", "corel", "--n", "400", "--queries", "8",
            "--tables", "6", "--out", out_dir, "--layout", "frozen",
        ]) == 0
        payload = capsys.readouterr().out
        assert '"layout": "frozen"' in payload
        index = Index.open(out_dir)
        assert index.spec.layout == "frozen"
        assert isinstance(index.engine.index, FrozenLSHIndex)
        index.close()
