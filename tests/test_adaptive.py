"""Query-adaptive execution and the typed result envelope (PR 10).

The contracts under test:

* :class:`~repro.api.QueryOutcome` / :class:`~repro.api.BatchOutcome`
  are the only shapes :meth:`repro.api.Index.query` returns, on every
  execution path, and their payload arrays are bit-identical to the
  deprecated legacy shapes (which still work, warning once);
* a bounded probe budget (``target_candidates``) only ever *trims*:
  adaptive radius answers are a subset of the fixed-budget answers with
  ``probes_used`` never above the fixed fan-out — and with a
  non-binding budget the answers are bit-identical;
* adaptive top-k under the default ``quality_floor`` certifies only
  exact rows, so its answers are bit-identical to the exact top-k
  reference — across inserts/re-freezes and across the thread, process
  and TCP transports;
* the EWMA-recalibrated cost model never dispatches a strategy whose
  true cost exceeds 2x the oracle's choice on the calibration set;
* ``Index.reset_stats()`` propagates through a worker pool: transport
  counters, worker-side stats and recalibration counts all read zero in
  the next snapshot;
* the JSON-lines stream speaks protocol v2 (the envelope body) by
  default and byte-identical v1 under ``proto=1``, and consumes the
  adaptive request fields.
"""

import json
import warnings

import numpy as np
import pytest

from repro.api import (
    AdaptivePolicy,
    BatchOutcome,
    Index,
    IndexSpec,
    QueryOutcome,
    QuerySpec,
)
from repro.core.adaptive import CostModelTuner
from repro.core.cost_model import CostModel
from repro.exceptions import ConfigurationError
from repro.service.stream import serve_stream

hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis"
)
from hypothesis import given, settings
from hypothesis import strategies as st

DIM = 10


def _points(n, seed, dim=DIM):
    rng = np.random.default_rng(seed)
    tight = rng.normal(scale=0.3, size=(n // 2, dim))
    loose = rng.uniform(-3.0, 3.0, size=(n - n // 2, dim))
    return np.concatenate([tight, loose])


def _spec(**overrides):
    base = dict(
        metric="l2",
        radius=1.5,
        num_tables=8,
        layout="frozen",
        variant="multiprobe",
        num_probes=4,
        seed=3,
    )
    base.update(overrides)
    return IndexSpec(**base)


def _assert_id_subset(a_ids, a_dists, b_ids, b_dists):
    """ids nest exactly; distances agree within float tolerance.

    A budget flip from the scan to the LSH kernel changes the BLAS
    reduction order, so a shared id's distance may differ in the final
    ulps between the two strategies — the subset contract is on ids.
    """
    ref = dict(zip(list(b_ids), list(b_dists)))
    for i, d in zip(list(a_ids), list(a_dists)):
        assert i in ref
        assert np.isclose(d, ref[i], rtol=1e-9, atol=1e-12)


class TestAdaptivePolicy:
    def test_validation_rejects_bad_knobs(self):
        for bad in (
            dict(target_candidates=0),
            dict(target_candidates=True),
            dict(quality_floor=1.5),
            dict(k_safety=0.5),
            dict(radius_growth=1.0),
            dict(max_escalations=-1),
            dict(min_probes=-2),
            dict(ewma_weight=0.0),
        ):
            with pytest.raises(ConfigurationError):
                AdaptivePolicy(**bad)

    def test_dict_round_trip(self):
        policy = AdaptivePolicy(
            target_candidates=64, quality_floor=0.9, recalibrate=True
        )
        doc = json.loads(json.dumps(policy.to_dict()))
        assert AdaptivePolicy.from_dict(doc) == policy
        with pytest.raises(ConfigurationError):
            AdaptivePolicy.from_dict({"no_such_knob": 1})

    def test_resolve_folds_request_overrides(self):
        base = AdaptivePolicy(target_candidates=64)
        assert base.resolve() is base
        resolved = base.resolve(adaptive=False, target_candidates=8)
        assert resolved.enabled is False and resolved.target_candidates == 8
        assert base.resolve(quality_floor=0.8).quality_floor == 0.8

    def test_bounds_probes(self):
        assert not AdaptivePolicy().bounds_probes
        assert AdaptivePolicy(target_candidates=4).bounds_probes
        assert not AdaptivePolicy(
            enabled=False, target_candidates=4
        ).bounds_probes

    def test_index_spec_round_trips_the_policy(self):
        spec = _spec(adaptive={"target_candidates": 32})
        doc = json.loads(json.dumps(spec.to_dict()))
        reread = IndexSpec.from_dict(doc)
        assert reread == spec
        assert isinstance(reread.adaptive, AdaptivePolicy)

    def test_query_spec_round_trips_the_overrides(self):
        q = QuerySpec(
            np.zeros(DIM), adaptive=True, target_candidates=16,
            quality_floor=0.8,
        )
        doc = json.loads(json.dumps(q.to_dict()))
        assert QuerySpec.from_dict(doc) == q


class TestEnvelope:
    @pytest.fixture(scope="class")
    def index(self):
        return Index.build(_points(500, seed=0), _spec())

    def test_single_query_returns_outcome(self, index):
        out = index.query(QuerySpec(_points(500, seed=0)[7]))
        assert isinstance(out, QueryOutcome)
        assert out.output_size == len(out.ids) == len(out.distances)
        assert out.strategy in ("lsh", "linear")
        assert out.stats.strategy.value == out.strategy

    def test_batch_is_a_sequence(self, index):
        queries = _points(500, seed=0)[:6]
        batch = index.query(QuerySpec(queries))
        assert isinstance(batch, BatchOutcome)
        assert len(batch) == 6
        assert isinstance(batch[0], QueryOutcome)
        assert isinstance(batch[1:3], BatchOutcome) and len(batch[1:3]) == 2
        assert [o.output_size for o in batch] == [
            batch[i].output_size for i in range(6)
        ]
        assert sum(batch.strategy_counts.values()) == 6
        assert batch.degraded_count == 0

    def test_topk_outcome_is_exact(self, index):
        out = index.query(QuerySpec(_points(500, seed=0)[7], k=5))
        assert out.exact and out.output_size == 5
        assert out.radius == float(out.distances[-1])

    def test_payload_bit_identical_to_legacy_shape(self, index):
        queries = _points(500, seed=0)[:6]
        batch = index.query(QuerySpec(queries))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = index.query_batch(queries)
            converted = batch.to_results()
        for out, old, conv in zip(batch, legacy, converted):
            assert np.array_equal(out.ids, old.ids)
            assert np.array_equal(out.distances, old.distances)
            assert out.ids is conv.ids  # the envelope never copies
            assert out.stats is conv.stats

    def test_legacy_shapes_warn_once(self, index):
        import repro.api.deprecations as dep

        queries = _points(500, seed=0)[:2]
        dep._WARNED.discard("Index.query_batch()")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            index.query_batch(queries)
            index.query_batch(queries)
        messages = [str(w.message) for w in caught]
        assert sum("Index.query_batch()" in m for m in messages) == 1
        assert all("QueryOutcome" in m for m in messages if m)

    def test_as_dict_is_json_safe(self, index):
        out = index.query(QuerySpec(_points(500, seed=0)[7], k=5))
        doc = json.loads(json.dumps(out.as_dict()))
        assert doc["exact"] is True
        assert doc["strategy"] == out.strategy
        assert doc["ids"] == [int(i) for i in out.ids]
        if out.estimated_candidates != out.estimated_candidates:
            assert doc["estimated_candidates"] is None

    def test_recall_against(self, index):
        out = index.query(QuerySpec(_points(500, seed=0)[7], k=5))
        assert out.recall_against(out.ids) == 1.0
        assert out.recall_against(np.array([], dtype=np.int64)) == 1.0


@st.composite
def adaptive_case(draw):
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(80, 300))
    num_queries = draw(st.integers(1, 6))
    target = draw(st.integers(1, 40))
    points = _points(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    queries = points[rng.choice(n, size=num_queries, replace=False)]
    return points, queries, target, seed


class TestAdaptiveRadiusProperties:
    @given(adaptive_case())
    @settings(max_examples=12, deadline=None)
    def test_bounded_budget_only_trims(self, case):
        points, queries, target, seed = case
        fixed = Index.build(points, _spec(seed=seed % 97)).query(
            QuerySpec(queries)
        )
        adaptive = Index.build(
            points, _spec(seed=seed % 97, adaptive={"target_candidates": target})
        ).query(QuerySpec(queries))
        for a, b in zip(adaptive, fixed):
            _assert_id_subset(a.ids, a.distances, b.ids, b.distances)
            if a.probes_used >= 0 and b.probes_used >= 0:
                assert a.probes_used <= b.probes_used

    @given(adaptive_case())
    @settings(max_examples=10, deadline=None)
    def test_non_binding_budget_is_bit_identical(self, case):
        points, queries, _, seed = case
        fixed = Index.build(points, _spec(seed=seed % 97)).query(
            QuerySpec(queries)
        )
        adaptive = Index.build(
            points,
            _spec(seed=seed % 97, adaptive={"target_candidates": 10 * len(points)}),
        ).query(QuerySpec(queries))
        for a, b in zip(adaptive, fixed):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)
            assert a.strategy == b.strategy

    def test_request_overrides_win_over_the_spec(self):
        points = _points(400, seed=5)
        index = Index.build(points, _spec(adaptive={"target_candidates": 2}))
        fixed = Index.build(points, _spec())
        queries = points[:20]
        trimmed = index.query(QuerySpec(queries))
        disabled = index.query(QuerySpec(queries, adaptive=False))
        reference = fixed.query(QuerySpec(queries))
        for a, b in zip(disabled, reference):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)
        assert sum(o.probes_used for o in trimmed) <= sum(
            o.probes_used for o in reference
        )

    def test_adaptive_probe_telemetry(self):
        points = _points(300, seed=6)
        index = Index.build(points, _spec(adaptive={"target_candidates": 4}))
        index.query(QuerySpec(points[:15]))
        snap = index.stats_snapshot()
        assert snap["adaptive_probes"] == 15


@st.composite
def topk_case(draw):
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(60, 250))
    k = draw(st.integers(1, 10))
    insert = draw(st.integers(0, 40))
    points = _points(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    queries = points[rng.choice(n, size=3, replace=False)]
    extra = _points(max(insert, 2), seed=seed + 2)[:insert]
    return points, queries, k, extra, seed


class TestAdaptiveTopKProperties:
    @given(topk_case())
    @settings(max_examples=10, deadline=None)
    def test_adaptive_topk_equals_exact_reference(self, case):
        points, queries, k, extra, seed = case
        spec_kwargs = dict(seed=seed % 97)
        adaptive = Index.build(
            points, _spec(adaptive={"target_candidates": 64}, **spec_kwargs)
        )
        fixed = Index.build(points, _spec(**spec_kwargs))
        for round_ in range(2):
            for q in queries:
                a = adaptive.query(QuerySpec(q, k=k))
                b = fixed.query(QuerySpec(q, k=k))
                assert np.array_equal(a.ids, b.ids)
                assert np.array_equal(a.distances, b.distances)
                assert a.radius == b.radius
                assert a.exact and b.exact
            if round_ == 0 and len(extra):
                # Inserts (and any overflow re-freeze they trigger) must
                # not break the certification rule.
                adaptive.insert(extra)
                fixed.insert(extra)

    def test_adaptive_topk_records_radius_estimates(self):
        points = _points(300, seed=9)
        index = Index.build(
            points, _spec(adaptive={"target_candidates": 64})
        )
        for q in points[:4]:
            index.query(QuerySpec(q, k=3))
        assert index.stats_snapshot()["radius_estimates"] == 4

    def test_k_beyond_n_still_raises(self):
        points = _points(80, seed=10)
        index = Index.build(points, _spec(adaptive={"target_candidates": 8}))
        with pytest.raises(ConfigurationError):
            index.query(QuerySpec(points[0], k=len(points) + 1))


class TestAdaptiveAcrossTransports:
    def test_threads_equal_processes(self, tmp_path):
        points = _points(600, seed=11)
        queries = points[:30]
        base = dict(num_shards=2, adaptive={"target_candidates": 6})
        threads = Index.build(points, _spec(execution="threads", **base))
        processes = Index.build(
            points, _spec(execution="processes", **base), num_workers=2
        )
        try:
            ra = threads.query(QuerySpec(queries))
            rb = processes.query(QuerySpec(queries))
            for a, b in zip(ra, rb):
                assert np.array_equal(a.ids, b.ids)
                assert np.array_equal(a.distances, b.distances)
                assert a.probes_used == b.probes_used
                assert a.exact == b.exact
            ta = threads.query(QuerySpec(queries[0], k=5))
            tb = processes.query(QuerySpec(queries[0], k=5))
            assert np.array_equal(ta.ids, tb.ids)
            assert np.array_equal(ta.distances, tb.distances)
        finally:
            processes.close()

    def test_tcp_equals_pipes(self, tmp_path):
        from repro.service.shard_server import ShardServer

        points = _points(500, seed=12)
        queries = points[:20]
        spec = _spec(
            execution="processes", num_shards=2,
            adaptive={"target_candidates": 6},
        )
        artifact = str(tmp_path / "adaptive-artifact")
        built = Index.build(points, spec, num_workers=2)
        try:
            built.save(artifact)
            expected = built.query(QuerySpec(queries))
        finally:
            built.close()
        servers = [
            ShardServer(artifact, shard_ids=[s]).start() for s in range(2)
        ]
        try:
            remote = Index.open(
                artifact,
                endpoints=[f"127.0.0.1:{server.port}" for server in servers],
            )
            try:
                actual = remote.query(QuerySpec(queries))
                for a, b in zip(actual, expected):
                    assert np.array_equal(a.ids, b.ids)
                    assert np.array_equal(a.distances, b.distances)
                    assert a.probes_used == b.probes_used
            finally:
                remote.close()
        finally:
            for server in servers:
                server.close()


class TestCostModelTuner:
    @given(
        st.floats(0.5, 4.0),
        st.floats(0.5, 4.0),
        st.integers(0, 2**12),
    )
    @settings(max_examples=20, deadline=None)
    def test_recalibrated_choice_within_2x_of_oracle(
        self, true_alpha, true_beta, seed
    ):
        """Feed exact per-stage rates; the tuned model's dispatch choice
        never costs more than 2x the oracle's on the calibration set."""
        oracle = CostModel(alpha=true_alpha, beta=true_beta)
        tuner = CostModelTuner(CostModel(alpha=1.0, beta=1.0), ewma_weight=0.5)
        rng = np.random.default_rng(seed)
        for _ in range(30):
            linear_ops = int(rng.integers(100, 2000))
            cand_ops = int(rng.integers(10, 500))
            tuner.observe_batch(
                linear_ops, true_beta * linear_ops,
                cand_ops, true_alpha * cand_ops,
            )
        assert tuner.recalibrations == 60
        tuned = tuner.model
        for _ in range(50):
            n = int(rng.integers(100, 5000))
            collisions = int(rng.integers(0, 4 * n))
            cand = float(rng.uniform(0, n))
            chosen = tuned.choose(collisions, cand, n)
            best = min(
                oracle.lsh_cost(collisions, cand), oracle.linear_cost(n)
            )
            measured = (
                oracle.lsh_cost(collisions, cand)
                if chosen.value == "lsh"
                else oracle.linear_cost(n)
            )
            assert measured <= 2.0 * best + 1e-9

    def test_ignores_empty_and_foreign_stages(self):
        tuner = CostModelTuner(CostModel(alpha=1.0, beta=1.0))
        tuner.observe("linear", 0, 1.0)
        tuner.observe("hash", 100, 1.0)
        tuner.observe("linear", 100, 0.0)
        assert tuner.recalibrations == 0
        assert tuner.model.alpha == 1.0 and tuner.model.beta == 1.0

    def test_recalibrate_policy_surfaces_counter(self):
        points = _points(400, seed=13)
        index = Index.build(
            points, _spec(adaptive={"recalibrate": True})
        )
        index.query(QuerySpec(points[:20]))
        assert index.stats_snapshot()["recalibrations"] >= 1


class TestResetStatsRegression:
    def test_worker_pool_reset_zeroes_everything(self):
        points = _points(600, seed=14)
        index = Index.build(
            points,
            _spec(
                execution="processes", num_shards=2,
                adaptive={"target_candidates": 6, "recalibrate": True},
            ),
            num_workers=2,
        )
        try:
            index.query(QuerySpec(points[:25]))
            before = index.stats_snapshot()
            assert before["queries_served"] == 25
            assert before["bytes_shipped"] > 0
            assert before["adaptive_probes"] == 25
            index.reset_stats()
            after = index.stats_snapshot()
            # The regression: transport counters were re-synced from
            # pool-lifetime values and worker-local stats survived.
            for key in (
                "queries_served", "batches", "bytes_shipped",
                "worker_respawns", "worker_timeouts", "worker_retries",
                "adaptive_probes", "radius_estimates", "recalibrations",
            ):
                assert after.get(key, 0) == 0, (key, after.get(key))
            assert after.get("respawns_by_cause", {}) == {}
            index.query(QuerySpec(points[:5]))
            again = index.stats_snapshot()
            assert again["queries_served"] == 5
            assert again["bytes_shipped"] > 0
        finally:
            index.close()


class TestStreamProtocolV2:
    @pytest.fixture(scope="class")
    def served(self):
        points = _points(400, seed=15)
        return Index.build(
            points, _spec(adaptive={"target_candidates": 64})
        ), points

    def test_v2_body_carries_the_envelope(self, served):
        index, points = served
        lines = [
            json.dumps({"query": points[0].tolist()}),
            json.dumps({"query": points[1].tolist(), "k": 4}),
        ]
        radius_doc, topk_doc = (
            json.loads(r) for r in serve_stream(index, lines)
        )
        for doc in (radius_doc, topk_doc):
            assert doc["v"] == 2
            assert doc["found"] == len(doc["ids"]) == len(doc["distances"])
            for key in (
                "radius", "strategy", "probes_used", "candidates_examined",
                "estimated_candidates", "exact", "degraded", "missing_shards",
            ):
                assert key in doc
        assert topk_doc["exact"] is True and topk_doc["found"] == 4

    def test_proto_v1_is_byte_identical_to_legacy(self, served):
        index, points = served
        line = json.dumps({"query": points[0].tolist()})
        (v1_line,) = serve_stream(index, [line], proto=1)
        out = index.query(QuerySpec(points[0]))
        legacy = json.dumps(
            {
                "ids": out.ids.tolist(),
                "distances": out.distances.tolist(),
                "found": out.output_size,
                "strategy": out.strategy,
            }
        )
        assert v1_line == legacy

    def test_adaptive_request_fields_are_consumed(self, served):
        index, points = served
        lines = [
            json.dumps({"query": points[0].tolist(), "adaptive": True,
                        "target_candidates": 1}),
            json.dumps({"query": points[0].tolist(), "adaptive": False}),
        ]
        trimmed, full = (json.loads(r) for r in serve_stream(index, lines))
        _assert_id_subset(
            trimmed["ids"], trimmed["distances"], full["ids"], full["distances"]
        )
        assert trimmed["probes_used"] <= full["probes_used"]

    def test_bad_adaptive_fields_are_per_line_errors(self, served):
        index, points = served
        lines = [
            json.dumps({"query": points[0].tolist(), "target_candidates": 0}),
            json.dumps({"query": points[0].tolist(), "quality_floor": 2.0}),
            json.dumps({"query": points[0].tolist()}),
        ]
        out = [json.loads(r) for r in serve_stream(index, lines)]
        assert "target_candidates" in out[0]["error"]
        assert "quality_floor" in out[1]["error"]
        assert out[2]["found"] >= 1

    def test_stream_never_touches_deprecated_shapes(self, served):
        index, points = served
        lines = [
            json.dumps({"query": points[0].tolist()}),
            json.dumps({"query": points[1].tolist(), "k": 3}),
            json.dumps({"op": "stats"}),
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            out = [json.loads(r) for r in serve_stream(index, lines)]
        assert out[-1]["queries_served"] >= 2
