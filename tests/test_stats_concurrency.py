"""ServiceStats is accounted into from many threads at once.

``serve_stream_concurrent`` fans batches out to a thread pool, and every
worker thread accounts into the *same* stats object; before the stats
lock landed, the bare ``+=`` counters silently lost updates under
contention.  These tests hammer the mutating accessors from many
threads and assert the totals are exact.
"""

import threading

from repro.observability import StageTrace
from repro.service.stats import ServiceStats

THREADS = 8
ITERATIONS = 2000


def _hammer(target):
    """Run ``target(thread_index)`` in THREADS threads, join them all."""
    barrier = threading.Barrier(THREADS)

    def run(i):
        barrier.wait()
        target(i)

    workers = [threading.Thread(target=run, args=(i,)) for i in range(THREADS)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()


def test_record_batch_totals_are_exact_under_contention():
    stats = ServiceStats()

    def account(_):
        for _ in range(ITERATIONS):
            stats.record_batch(3, 0.001, strategies={"lsh": 2, "linear": 1})

    _hammer(account)
    assert stats.queries_served == THREADS * ITERATIONS * 3
    assert stats.batches == THREADS * ITERATIONS
    assert stats.latency.count == stats.queries_served
    assert stats.strategy_counts == {
        "lsh": THREADS * ITERATIONS * 2,
        "linear": THREADS * ITERATIONS,
    }


def test_record_cache_and_stage_totals_are_exact_under_contention():
    stats = ServiceStats()

    def account(_):
        for _ in range(ITERATIONS):
            stats.record_cache(hits=2, misses=1, deduplicated=1)
            local = StageTrace()
            local.add("merge", 0.001)
            stats.add_stages(local)

    _hammer(account)
    assert stats.cache_hits == THREADS * ITERATIONS * 2
    assert stats.cache_misses == THREADS * ITERATIONS
    assert stats.deduplicated == THREADS * ITERATIONS
    assert stats.stage_calls["merge"] == THREADS * ITERATIONS


def test_merge_under_contention_sums_exactly():
    total = ServiceStats()
    part = ServiceStats()
    part.record_batch(5, 0.002)
    doc = part.as_dict()

    def fold(_):
        for _ in range(ITERATIONS):
            total.merge(ServiceStats.from_dict(doc))

    _hammer(fold)
    assert total.queries_served == THREADS * ITERATIONS * 5
    assert total.batches == THREADS * ITERATIONS
    assert total.latency.count == total.queries_served
