"""Tests for incremental insertion and batch lookup."""

import numpy as np
import pytest

from repro.core import CostModel, HybridSearcher, LinearScan, LSHSearch
from repro.exceptions import DimensionMismatchError, EmptyIndexError
from repro.hashing import PStableLSH
from repro.index import LSHIndex
from repro.sketches import PrecomputedHllHashes


def build_index(points, seed=5):
    return LSHIndex(
        PStableLSH(16, w=2.0, p=2, seed=seed), k=4, num_tables=8, hll_seed=3
    ).build(points)


class TestPrecomputedExtend:
    def test_extend_preserves_prefix(self):
        small = PrecomputedHllHashes(100, p=6, seed=2)
        grown = PrecomputedHllHashes(100, p=6, seed=2)
        grown.extend(250)
        assert np.array_equal(small.registers, grown.registers[:100])
        assert np.array_equal(small.ranks, grown.ranks[:100])

    def test_extend_matches_fresh(self):
        grown = PrecomputedHllHashes(100, p=6, seed=2)
        grown.extend(250)
        fresh = PrecomputedHllHashes(250, p=6, seed=2)
        assert np.array_equal(grown.registers, fresh.registers)
        assert np.array_equal(grown.ranks, fresh.ranks)

    def test_extend_noop(self):
        hashes = PrecomputedHllHashes(50, p=6, seed=2)
        hashes.extend(50)
        assert len(hashes) == 50

    def test_shrink_rejected(self):
        hashes = PrecomputedHllHashes(50, p=6, seed=2)
        with pytest.raises(Exception):
            hashes.extend(10)


class TestIncrementalInsert:
    def test_ids_assigned_sequentially(self, gaussian_points):
        index = build_index(gaussian_points[:400])
        new_ids = index.insert(gaussian_points[400:])
        assert new_ids.tolist() == list(range(400, 600))
        assert index.n == 600

    def test_insert_empty(self, gaussian_points):
        index = build_index(gaussian_points)
        assert index.insert(np.empty((0, 16))).size == 0

    def test_incremental_equals_bulk(self, gaussian_points):
        """Build-then-insert must answer queries exactly like bulk build."""
        incremental = build_index(gaussian_points[:400], seed=5)
        incremental.insert(gaussian_points[400:])
        scan = LinearScan(gaussian_points, "l2")
        for i in (0, 250, 450, 599):
            q = gaussian_points[i]
            inc_ids = set(LSHSearch(incremental).query(q, 1.2).ids.tolist())
            true_ids = set(scan.query(q, 1.2).ids.tolist())
            assert i in inc_ids
            assert inc_ids <= true_ids

    def test_inserted_points_are_findable(self, gaussian_points):
        index = build_index(gaussian_points[:500])
        index.insert(gaussian_points[500:])
        searcher = LSHSearch(index)
        for i in (500, 555, 599):
            result = searcher.query(gaussian_points[i], radius=0.5)
            assert i in result.ids

    def test_sketches_cover_inserted_points(self, gaussian_points):
        """The merged estimate must track exact counts after insertion."""
        index = build_index(gaussian_points[:400])
        index.insert(gaussian_points[400:])
        errors = []
        for i in range(0, 100, 10):
            lookup = index.lookup(gaussian_points[i])
            exact = index.candidate_ids(lookup).size
            if exact < 10:
                continue
            estimate = index.merged_sketch(lookup).estimate()
            errors.append(abs(estimate - exact) / exact)
        assert errors and float(np.mean(errors)) < 0.25

    def test_insert_dimension_mismatch(self, gaussian_points):
        index = build_index(gaussian_points)
        with pytest.raises(DimensionMismatchError):
            index.insert(np.zeros((3, 5)))

    def test_insert_before_build_rejected(self):
        index = LSHIndex(PStableLSH(16, w=2.0, p=2, seed=0), k=2, num_tables=2)
        with pytest.raises(EmptyIndexError):
            index.insert(np.zeros((2, 16)))

    def test_linear_branch_sees_inserted_points(self, gaussian_points):
        """Regression: the hybrid's exact-scan fallback must cover points
        inserted after the searcher was constructed (the cached scan
        used to go stale)."""
        from repro.core import CostModel, HybridSearcher

        index = build_index(gaussian_points[:400])
        # Force the linear branch for every query.
        hybrid = HybridSearcher(index, CostModel(alpha=1e12, beta=1.0))
        index.insert(gaussian_points[400:])
        result = hybrid.query(gaussian_points[599], radius=0.5)
        assert result.stats.strategy.value == "linear"
        assert 599 in result.ids

    def test_hybrid_after_insert(self, gaussian_points):
        index = build_index(gaussian_points[:400])
        index.insert(gaussian_points[400:])
        hybrid = HybridSearcher(index, CostModel.from_ratio(6.0))
        result = hybrid.query(gaussian_points[599], radius=1.0)
        assert 599 in result.ids
        assert result.stats.linear_cost == pytest.approx(
            hybrid.cost_model.linear_cost(600)
        )


class TestLookupBatch:
    def test_matches_single_lookups(self, l2_index, gaussian_points):
        queries = gaussian_points[:10]
        batch = l2_index.lookup_batch(queries)
        for q, lookup in zip(queries, batch):
            single = l2_index.lookup(q)
            assert lookup.keys == single.keys
            assert lookup.num_collisions == single.num_collisions

    def test_empty_rejected(self, l2_index):
        with pytest.raises(DimensionMismatchError):
            l2_index.lookup_batch(np.zeros(16))  # 1-d, not a matrix

    def test_unbuilt_rejected(self, gaussian_points):
        index = LSHIndex(PStableLSH(16, w=2.0, p=2, seed=0), k=2, num_tables=2)
        with pytest.raises(EmptyIndexError):
            index.lookup_batch(gaussian_points[:3])
