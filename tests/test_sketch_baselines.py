"""Tests for the baseline sketches: LinearCounter, KMV, exact, Bloom."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches import BloomFilter, ExactDistinctCounter, KMinValues, LinearCounter


class TestLinearCounter:
    def test_accuracy_below_capacity(self):
        counter = LinearCounter(m=4096, seed=0)
        counter.add_batch(np.arange(500))
        assert abs(counter.estimate() - 500) / 500 < 0.1

    def test_duplicates_ignored(self):
        counter = LinearCounter(m=2048, seed=0)
        counter.add_batch(np.tile(np.arange(100), 20))
        assert abs(counter.estimate() - 100) / 100 < 0.15

    def test_saturation_returns_inf(self):
        counter = LinearCounter(m=8, seed=0)
        counter.add_batch(np.arange(10_000))
        assert math.isinf(counter.estimate())

    def test_merge_union(self):
        a = LinearCounter(m=4096, seed=1)
        b = LinearCounter(m=4096, seed=1)
        a.add_batch(np.arange(0, 300))
        b.add_batch(np.arange(200, 500))
        a.merge_in_place(b)
        assert abs(a.estimate() - 500) / 500 < 0.15

    def test_merge_incompatible_raises(self):
        with pytest.raises(SketchError):
            LinearCounter(m=64).merge_in_place(LinearCounter(m=128))

    def test_invalid_m(self):
        with pytest.raises(ConfigurationError):
            LinearCounter(m=0)

    def test_scalar_add(self):
        counter = LinearCounter(m=64, seed=0)
        counter.add(7)
        assert not counter.is_empty()

    def test_empty(self):
        assert LinearCounter(m=64).is_empty()


class TestKMinValues:
    def test_exact_below_k(self):
        sketch = KMinValues(k=128, seed=0)
        sketch.add_batch(np.arange(50))
        assert sketch.estimate() == 50.0

    def test_accuracy_above_k(self):
        sketch = KMinValues(k=256, seed=0)
        sketch.add_batch(np.arange(20_000))
        err = abs(sketch.estimate() - 20_000) / 20_000
        assert err < 4 / math.sqrt(256 - 2)

    def test_duplicates_ignored(self):
        sketch = KMinValues(k=64, seed=0)
        sketch.add_batch(np.tile(np.arange(30), 10))
        assert sketch.estimate() == 30.0

    def test_merge_union(self):
        a = KMinValues(k=256, seed=2)
        b = KMinValues(k=256, seed=2)
        union = KMinValues(k=256, seed=2)
        a.add_batch(np.arange(0, 5000))
        b.add_batch(np.arange(3000, 8000))
        union.add_batch(np.arange(0, 8000))
        a.merge_in_place(b)
        assert a.estimate() == pytest.approx(union.estimate())

    def test_merge_incompatible_raises(self):
        with pytest.raises(SketchError):
            KMinValues(k=16).merge_in_place(KMinValues(k=32))

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            KMinValues(k=1)

    def test_empty(self):
        sketch = KMinValues(k=8)
        assert sketch.is_empty()
        assert sketch.estimate() == 0.0


class TestExactDistinctCounter:
    def test_exact(self):
        counter = ExactDistinctCounter()
        counter.add_batch(np.tile(np.arange(123), 3))
        assert counter.estimate() == 123.0
        assert len(counter) == 123

    def test_merge(self):
        a = ExactDistinctCounter()
        b = ExactDistinctCounter()
        a.add_batch(np.arange(0, 10))
        b.add_batch(np.arange(5, 15))
        a.merge_in_place(b)
        assert a.estimate() == 15.0

    def test_merge_wrong_type(self):
        with pytest.raises(SketchError):
            ExactDistinctCounter().merge_in_place(KMinValues(k=4))

    def test_empty(self):
        assert ExactDistinctCounter().is_empty()


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=1000, error_rate=0.01, seed=0)
        for i in range(500):
            bloom.add(i)
        assert all(i in bloom for i in range(500))

    def test_false_positive_rate_bounded(self):
        bloom = BloomFilter(capacity=2000, error_rate=0.01, seed=1)
        for i in range(2000):
            bloom.add(i)
        false_hits = sum(1 for i in range(10_000, 20_000) if i in bloom)
        assert false_hits / 10_000 < 0.05

    def test_add_if_new(self):
        bloom = BloomFilter(capacity=100, seed=0)
        assert bloom.add_if_new(42) is True
        assert bloom.add_if_new(42) is False

    def test_expected_fp_rate_grows(self):
        bloom = BloomFilter(capacity=100, seed=0)
        assert bloom.expected_false_positive_rate == 0.0
        for i in range(100):
            bloom.add(i)
        assert 0.0 < bloom.expected_false_positive_rate < 0.1

    @pytest.mark.parametrize("bad", [0, -5, 1.5])
    def test_invalid_capacity(self, bad):
        with pytest.raises(ConfigurationError):
            BloomFilter(capacity=bad)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5])
    def test_invalid_error_rate(self, bad):
        with pytest.raises(ConfigurationError):
            BloomFilter(capacity=10, error_rate=bad)

    def test_memory_is_packed_bits(self):
        bloom = BloomFilter(capacity=1000, error_rate=0.01)
        assert bloom.memory_bytes == (bloom.num_bits + 7) // 8
