"""Networked shard tier: frame codec, TCP bit-identity, replica failover.

The contract under test (PR 9): the worker wire is a
:class:`~repro.service.transport.ShardTransport`, and the TCP path —
standalone :class:`~repro.service.shard_server.ShardServer` processes
serving mmap'd frozen shards — answers every request **bit-identically**
to the duplex-pipe path and the thread fan-out.  Replica sets per shard
slot add fault tolerance on top: reads round-robin across healthy
replicas and fail over on classified transport errors (disconnect,
corrupt frame, corrupt payload, dropped reply, slow link past the
deadline) without losing bit-identity; inserts broadcast to every
replica of the owning slot, and the replay log reconverges a replica
that reconnects after missing inserts.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.api import Index, IndexSpec, QuerySpec
from repro.exceptions import ConfigurationError, ShardUnavailableError
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultTolerancePolicy
from repro.service.shard_server import ShardServer
from repro.service.transport import (
    FrameError,
    corrupt_frame,
    decode_frame,
    encode_frame,
    frame_bytes,
)
from repro.service.workers import WorkerPool

N, DIM, SHARDS = 400, 10, 2
SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _spec(**overrides):
    base = dict(
        metric="l2",
        radius=1.2,
        num_tables=8,
        num_shards=SHARDS,
        layout="frozen",
        cost_ratio=6.0,
        seed=7,
    )
    base.update(overrides)
    return IndexSpec(**base)


def _drill_policy(**overrides):
    base = dict(
        recv_deadline=0.5,
        startup_deadline=30.0,
        max_retries=2,
        backoff_base=0.01,
        backoff_max=0.05,
        backoff_jitter=0.25,
        breaker_threshold=10,
        breaker_cooldown=30.0,
    )
    base.update(overrides)
    return FaultTolerancePolicy(**base)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    return rng.normal(size=(N, DIM))


@pytest.fixture(scope="module")
def queries(points):
    rng = np.random.default_rng(1)
    return np.concatenate([points[:4], rng.normal(size=(4, DIM))])


@pytest.fixture(scope="module")
def artifact(tmp_path_factory, points):
    index = Index.build(points, _spec(execution="processes"), num_workers=2)
    path = str(tmp_path_factory.mktemp("transport") / "idx")
    index.save(path)
    index.close()
    return path


@pytest.fixture(scope="module")
def thread_index(points):
    index = Index.build(points, _spec())
    yield index
    index.close()


@pytest.fixture(scope="module")
def pipe_pool(artifact):
    pool = WorkerPool(artifact, num_workers=2)
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def tcp_pool(artifact):
    """A pool connected to two in-process shard servers (one per slot)."""
    servers = [ShardServer(artifact, shard_ids=[s]).start() for s in range(SHARDS)]
    pool = WorkerPool(
        artifact,
        endpoints=[f"127.0.0.1:{server.port}" for server in servers],
    )
    yield pool
    pool.close()
    for server in servers:
        server.close()


def assert_results_equal(got, expected):
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)


class TestFrameCodec:
    def test_roundtrip(self):
        message = ("radius", [0, 1], np.arange(6.0).reshape(2, 3), 1.5)
        frame = encode_frame(message)
        decoded = decode_frame(frame[:12], frame[12:])
        assert decoded[0] == "radius" and decoded[3] == 1.5
        assert np.array_equal(decoded[2], message[2])

    def test_truncated_payload_is_rejected_by_length(self):
        frame = encode_frame(("ping",))
        with pytest.raises(FrameError, match="truncated"):
            decode_frame(frame[:12], frame[12:-1])

    def test_corrupt_frame_fails_the_checksum_gate(self):
        frame = corrupt_frame(("ping",))
        with pytest.raises(FrameError, match="checksum"):
            decode_frame(frame[:12], frame[12:])

    def test_truncated_pickle_fails_at_deserialise(self):
        # The CORRUPT fault ships a checksummed-but-truncated pickle:
        # the CRC gate passes and the unpickle step reports the damage.
        import pickle

        payload = pickle.dumps(("stats",))[:4]
        frame = frame_bytes(payload)
        with pytest.raises(FrameError, match="deserialise"):
            decode_frame(frame[:12], frame[12:])


class TestEndpointConfig:
    def test_parse_endpoint_group_forms(self):
        parse = WorkerPool._parse_endpoint_group
        assert parse("127.0.0.1:7401") == [("127.0.0.1", 7401)]
        assert parse("a:1,b:2") == [("a", 1), ("b", 2)]
        assert parse([("a", 1), "b:2"]) == [("a", 1), ("b", 2)]

    @pytest.mark.parametrize("bad", ["localhost", "host:", ":7401", "host:port"])
    def test_malformed_endpoint_is_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="HOST:PORT"):
            WorkerPool._parse_endpoint_group(bad)

    def test_empty_group_list_is_rejected(self, artifact):
        with pytest.raises(ConfigurationError, match="at least one"):
            WorkerPool(artifact, endpoints=[])

    def test_more_groups_than_shards_is_rejected(self, artifact):
        with pytest.raises(ConfigurationError, match="exceed"):
            WorkerPool(
                artifact, endpoints=["a:1", "b:2", "c:3"]
            )

    def test_fault_plan_cannot_ride_remote_endpoints(self, artifact):
        plan = FaultPlan.scripted(FaultSpec(FaultKind.CRASH, worker=0, op_index=0))
        with pytest.raises(ConfigurationError, match="shard servers"):
            WorkerPool(artifact, endpoints=["a:1"], fault_plan=plan)

    def test_num_workers_must_match_group_count(self, artifact):
        with pytest.raises(ConfigurationError, match="conflicts"):
            WorkerPool(artifact, num_workers=2, endpoints=["a:1"])

    def test_replicas_field_requires_processes(self):
        with pytest.raises(ConfigurationError, match="processes"):
            _spec(replicas=2)


class TestTcpBitIdentity:
    def test_radius_matches_pipe_and_threads(
        self, tcp_pool, pipe_pool, thread_index, queries
    ):
        tcp = tcp_pool.query_batch(queries)
        assert_results_equal(tcp, pipe_pool.query_batch(queries))
        assert_results_equal(tcp, thread_index.query_batch(queries))

    def test_topk_matches_pipe_and_threads(
        self, tcp_pool, pipe_pool, thread_index, queries
    ):
        tcp = tcp_pool.query_topk_batch(queries, k=5)
        assert_results_equal(tcp, pipe_pool.query_topk_batch(queries, k=5))
        assert_results_equal(tcp, thread_index.query(QuerySpec(queries, k=5)))

    def test_facade_open_with_endpoints(self, artifact, pipe_pool, queries):
        with ShardServer(artifact).start() as server:
            index = Index.open(
                artifact, endpoints=[f"127.0.0.1:{server.port}"]
            )
            try:
                assert isinstance(index.engine, WorkerPool)
                assert index.engine.replicas == 1
                assert_results_equal(
                    index.query_batch(queries), pipe_pool.query_batch(queries)
                )
            finally:
                index.close()

    def test_partial_server_is_rejected_at_connect(self, artifact):
        """A server missing shards the slot needs fails fast at handshake."""
        with ShardServer(artifact, shard_ids=[0]).start() as server:
            with pytest.raises(Exception, match="needs"):
                WorkerPool(artifact, endpoints=[f"127.0.0.1:{server.port}"])


class TestReplicatedPipes:
    def test_spec_replicas_builds_a_replicated_pool(self, points, queries, thread_index):
        index = Index.build(
            points, _spec(execution="processes", replicas=2), num_workers=2
        )
        try:
            pool = index.engine
            assert pool.replicas == 2
            assert len(pool.worker_pids()) == 4  # 2 slots x 2 replicas
            assert_results_equal(
                index.query_batch(queries), thread_index.query_batch(queries)
            )
        finally:
            index.close()

    def test_killed_replica_fails_over_bit_identically(
        self, artifact, queries, pipe_pool
    ):
        expected = pipe_pool.query_batch(queries)
        pool = WorkerPool(
            artifact, num_workers=2, replicas=2, policy=_drill_policy()
        )
        try:
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            for _ in range(4):
                assert_results_equal(pool.query_batch(queries), expected)
            counters = pool.failure_counters()
            assert counters["replica_failovers"] >= 1
        finally:
            pool.close()


#: one transport-fault drill per injected kind; every one must stay
#: bit-identical by failing over to the clean replica.
_FAILOVER_KINDS = [
    FaultSpec(FaultKind.DISCONNECT, worker=0, op_index=1, replica=0),
    FaultSpec(FaultKind.CORRUPT_FRAME, worker=0, op_index=1, replica=0),
    FaultSpec(FaultKind.CORRUPT, worker=0, op_index=1, replica=0),
    FaultSpec(FaultKind.DROP, worker=0, op_index=1, replica=0),
    FaultSpec(FaultKind.SLOW_LINK, worker=0, op_index=1, seconds=1.5, replica=0),
]


class TestTcpReplicaFailover:
    @pytest.mark.parametrize(
        "spec", _FAILOVER_KINDS, ids=lambda s: s.kind.value
    )
    def test_transport_fault_fails_over_bit_identically(
        self, artifact, queries, pipe_pool, spec
    ):
        expected = pipe_pool.query_batch(queries)
        plan = FaultPlan.scripted(spec)
        # Replica 0 carries the plan, replica 1 is clean; both serve all
        # shards as one slot's replica set.
        faulty = ShardServer(artifact, fault_plan=plan, worker=0, replica=0).start()
        clean = ShardServer(artifact, worker=0, replica=1).start()
        pool = WorkerPool(
            artifact,
            endpoints=[f"127.0.0.1:{faulty.port},127.0.0.1:{clean.port}"],
            policy=_drill_policy(),
        )
        try:
            for _ in range(4):
                assert_results_equal(pool.query_batch(queries), expected)
            assert pool.failure_counters()["replica_failovers"] >= 1
        finally:
            pool.close()
            faulty.close()
            clean.close()

    def test_insert_replays_into_a_reconnecting_replica(self, artifact, points):
        """The replay log reconverges a replica that missed inserts.

        A ``lifetime``-scoped disconnect downs replica 0 exactly once;
        inserts landing while it is inside its reconnect backoff reach
        only replica 1 (plus the replay log).  When the pool reconnects
        replica 0 it must replay the missed inserts — observable
        directly in the in-process server's shard state.
        """
        plan = FaultPlan.scripted(
            FaultSpec(
                FaultKind.DISCONNECT, worker=0, op_index=0, replica=0,
                scope="lifetime",
            )
        )
        lagging = ShardServer(artifact, fault_plan=plan, worker=0, replica=0).start()
        clean = ShardServer(artifact, worker=0, replica=1).start()
        # A long-ish backoff holds replica 0 down across the inserts.
        pool = WorkerPool(
            artifact,
            endpoints=[f"127.0.0.1:{lagging.port},127.0.0.1:{clean.port}"],
            policy=_drill_policy(backoff_base=0.5, backoff_max=1.0),
        )
        rng = np.random.default_rng(9)
        try:
            # First read hits replica 0's one-shot disconnect and fails
            # over; replica 0 is now down, backing off.
            pool.query_batch(points[:2])
            ids = pool.insert(rng.normal(size=(5, DIM)))
            assert len(ids) == 5
            assert sum(lagging.state.sizes().values()) == N  # missed them
            assert sum(clean.state.sizes().values()) == N + 5
            # Drive reads until the pool reconnects replica 0 (rotation
            # retries it once the backoff expires) and replays the log.
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                pool.query_batch(points[:2])
                if sum(lagging.state.sizes().values()) == N + 5:
                    break
                time.sleep(0.1)
            assert sum(lagging.state.sizes().values()) == N + 5
        finally:
            pool.close()
            lagging.close()
            clean.close()

    def test_duplicate_insert_seq_is_idempotent(self, artifact):
        """The seq-numbered insert dedup that makes replay safe."""
        server = ShardServer(artifact)
        try:
            before = server.state.sizes()[0]
            point = np.zeros((1, DIM))
            first = server.state.handle(("insert", 0, point, 17))
            again = server.state.handle(("insert", 0, point, 17))
            # The reply is the shard's size: unchanged on the duplicate.
            assert first == before + 1
            assert again == before + 1
            assert server.state.sizes()[0] == before + 1
        finally:
            server.close()


def _spawn_shard_server(artifact, shard=None):
    """Launch ``repro.cli shard-serve`` and parse its startup line."""
    argv = [sys.executable, "-m", "repro.cli", "shard-serve", "--artifact", artifact]
    if shard is not None:
        argv += ["--shards", str(shard)]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(argv, stdout=subprocess.PIPE, env=env, text=True)
    line = proc.stdout.readline()
    if not line:
        proc.wait(timeout=10)
        raise RuntimeError(f"shard-serve exited {proc.returncode} without a banner")
    return proc, json.loads(line)


class TestKilledReplicaProcesses:
    """Out-of-process servers, actually killed — the deployment drill."""

    def test_strict_reads_survive_killing_one_replica(
        self, artifact, queries, pipe_pool
    ):
        expected = pipe_pool.query_batch(queries)
        proc_a, banner_a = _spawn_shard_server(artifact)
        proc_b, banner_b = _spawn_shard_server(artifact)
        pool = WorkerPool(
            artifact,
            endpoints=[
                f"127.0.0.1:{banner_a['port']},127.0.0.1:{banner_b['port']}"
            ],
            policy=_drill_policy(),
        )
        try:
            assert_results_equal(pool.query_batch(queries), expected)
            proc_a.kill()
            proc_a.wait(timeout=10)
            # Strict mode: every read must still answer, bit-identically.
            for _ in range(6):
                assert_results_equal(pool.query_batch(queries), expected)
        finally:
            pool.close()
            for proc in (proc_a, proc_b):
                if proc.poll() is None:
                    proc.send_signal(signal.SIGINT)
                    proc.wait(timeout=10)

    def test_whole_replica_set_down_raises_or_degrades(self, artifact, queries):
        proc_a, banner_a = _spawn_shard_server(artifact, shard=0)
        proc_b, banner_b = _spawn_shard_server(artifact, shard=1)
        pool = WorkerPool(
            artifact,
            endpoints=[
                f"127.0.0.1:{banner_a['port']}",
                f"127.0.0.1:{banner_b['port']}",
            ],
            policy=_drill_policy(max_retries=1),
        )
        try:
            pool.query_batch(queries)  # healthy first
            proc_a.kill()
            proc_a.wait(timeout=10)
            # Strict mode refuses to serve with shard 0's set down.
            with pytest.raises(ShardUnavailableError):
                pool.query_batch(queries)
            # allow_partial degrades instead: shard 1 still contributes.
            degraded = pool.query_batch(queries, allow_partial=True)
            assert all(r.degraded for r in degraded)
            assert all(r.missing_shards == (0,) for r in degraded)
            # ...but when *no* slot answers, even allow_partial raises.
            proc_b.kill()
            proc_b.wait(timeout=10)
            with pytest.raises(ShardUnavailableError):
                pool.query_batch(queries, allow_partial=True)
        finally:
            pool.close()
            for proc in (proc_a, proc_b):
                if proc.poll() is None:
                    proc.kill()


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


class TestTransportEquivalenceProperty:
    """Hypothesis: TCP == pipe == threads on arbitrary query batches."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_all_three_transports_agree(
        self, seed, tcp_pool, pipe_pool, thread_index, points
    ):
        rng = np.random.default_rng(seed)
        batch = np.concatenate(
            [points[rng.integers(0, N, size=2)], rng.normal(size=(3, DIM))]
        )
        tcp = tcp_pool.query_batch(batch)
        assert_results_equal(tcp, pipe_pool.query_batch(batch))
        assert_results_equal(tcp, thread_index.query_batch(batch))
        tcp_k = tcp_pool.query_topk_batch(batch, k=4)
        assert_results_equal(tcp_k, pipe_pool.query_topk_batch(batch, k=4))
        assert_results_equal(tcp_k, thread_index.query(QuerySpec(batch, k=4)))
