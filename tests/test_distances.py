"""Tests for the distance kernels: correctness, batch/scalar agreement."""

import numpy as np
import pytest
from scipy.spatial.distance import cityblock, cosine as scipy_cosine, euclidean, hamming

from repro.distances import (
    cosine_distance,
    cosine_distance_batch,
    euclidean_distance,
    euclidean_distance_batch,
    hamming_distance,
    hamming_distance_batch,
    jaccard_distance,
    jaccard_distance_batch,
    manhattan_distance,
    manhattan_distance_batch,
    pairwise_distances,
)

RNG = np.random.default_rng(999)


class TestEuclidean:
    def test_pythagoras(self):
        assert euclidean_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_matches_scipy(self):
        for _ in range(20):
            x, y = RNG.normal(size=(2, 9))
            assert euclidean_distance(x, y) == pytest.approx(euclidean(x, y))

    def test_batch_matches_scalar(self):
        points = RNG.normal(size=(50, 7))
        q = RNG.normal(size=7)
        batch = euclidean_distance_batch(points, q)
        for i in range(50):
            assert batch[i] == pytest.approx(euclidean_distance(points[i], q))

    def test_identity(self):
        x = RNG.normal(size=5)
        assert euclidean_distance(x, x) == 0.0

    def test_symmetry(self):
        x, y = RNG.normal(size=(2, 5))
        assert euclidean_distance(x, y) == pytest.approx(euclidean_distance(y, x))


class TestManhattan:
    def test_simple(self):
        assert manhattan_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 7.0

    def test_matches_scipy(self):
        for _ in range(20):
            x, y = RNG.normal(size=(2, 9))
            assert manhattan_distance(x, y) == pytest.approx(cityblock(x, y))

    def test_batch_matches_scalar(self):
        points = RNG.normal(size=(50, 7))
        q = RNG.normal(size=7)
        batch = manhattan_distance_batch(points, q)
        for i in range(50):
            assert batch[i] == pytest.approx(manhattan_distance(points[i], q))

    def test_dominates_euclidean(self):
        x, y = RNG.normal(size=(2, 12))
        assert manhattan_distance(x, y) >= euclidean_distance(x, y)


class TestHamming:
    def test_simple(self):
        x = np.array([0, 1, 1, 0])
        y = np.array([1, 1, 0, 0])
        assert hamming_distance(x, y) == 2.0

    def test_matches_scipy(self):
        for _ in range(20):
            x = RNG.integers(0, 2, size=16)
            y = RNG.integers(0, 2, size=16)
            assert hamming_distance(x, y) == pytest.approx(hamming(x, y) * 16)

    def test_batch_matches_scalar(self):
        points = RNG.integers(0, 2, size=(50, 16))
        q = RNG.integers(0, 2, size=16)
        batch = hamming_distance_batch(points, q)
        for i in range(50):
            assert batch[i] == hamming_distance(points[i], q)

    def test_max_distance(self):
        x = np.zeros(8, dtype=int)
        y = np.ones(8, dtype=int)
        assert hamming_distance(x, y) == 8.0


class TestCosine:
    def test_orthogonal(self):
        assert cosine_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_parallel(self):
        x = np.array([1.0, 2.0, 3.0])
        assert cosine_distance(x, 5.0 * x) == pytest.approx(0.0, abs=1e-12)

    def test_antiparallel(self):
        x = np.array([1.0, 2.0])
        assert cosine_distance(x, -x) == pytest.approx(2.0)

    def test_matches_scipy(self):
        for _ in range(20):
            x, y = RNG.normal(size=(2, 9))
            assert cosine_distance(x, y) == pytest.approx(scipy_cosine(x, y))

    def test_zero_vector_convention(self):
        assert cosine_distance(np.zeros(3), np.array([1.0, 0.0, 0.0])) == 1.0

    def test_batch_matches_scalar(self):
        points = RNG.normal(size=(50, 7))
        q = RNG.normal(size=7)
        batch = cosine_distance_batch(points, q)
        for i in range(50):
            assert batch[i] == pytest.approx(cosine_distance(points[i], q))

    def test_batch_zero_rows(self):
        points = np.zeros((3, 4))
        q = np.ones(4)
        assert np.allclose(cosine_distance_batch(points, q), 1.0)

    def test_range(self):
        for _ in range(50):
            x, y = RNG.normal(size=(2, 6))
            assert 0.0 <= cosine_distance(x, y) <= 2.0


class TestJaccard:
    def test_simple(self):
        x = np.array([1, 1, 0, 0])
        y = np.array([1, 0, 1, 0])
        assert jaccard_distance(x, y) == pytest.approx(1 - 1 / 3)

    def test_identical_sets(self):
        x = np.array([1, 0, 1])
        assert jaccard_distance(x, x) == 0.0

    def test_disjoint_sets(self):
        assert jaccard_distance(np.array([1, 0]), np.array([0, 1])) == 1.0

    def test_empty_sets(self):
        assert jaccard_distance(np.zeros(4), np.zeros(4)) == 0.0

    def test_batch_matches_scalar(self):
        points = RNG.integers(0, 2, size=(40, 12))
        q = RNG.integers(0, 2, size=12)
        batch = jaccard_distance_batch(points, q)
        for i in range(40):
            assert batch[i] == pytest.approx(jaccard_distance(points[i], q))


class TestPairwiseDistances:
    def test_shape(self):
        D = pairwise_distances(RNG.normal(size=(3, 5)), RNG.normal(size=(7, 5)), "l2")
        assert D.shape == (3, 7)

    def test_values(self):
        queries = RNG.normal(size=(2, 4))
        points = RNG.normal(size=(5, 4))
        D = pairwise_distances(queries, points, "l2")
        assert D[1, 3] == pytest.approx(euclidean_distance(queries[1], points[3]))

    def test_single_query_vector(self):
        q = RNG.normal(size=4)
        points = RNG.normal(size=(5, 4))
        D = pairwise_distances(q, points, "l1")
        assert D.shape == (1, 5)
