"""Frozen multi-probe layout: unit tests + bit-identity properties.

The contract is the same as the plain frozen layout's
(:mod:`tests.test_frozen`): byte-level agreement with the dict-layout
:class:`~repro.index.multiprobe_index.MultiProbeLSHIndex` for every
primitive and every serving path — single queries, batches, exact
top-k, inserts through the overflow side-table, re-freeze, a
save/``np.load(mmap_mode="r")`` reopen, and the
``execution="processes"`` worker pool.
"""

import numpy as np
import pytest

from repro.api import Index, IndexSpec, QuerySpec
from repro.core import CostModel, HybridSearcher
from repro.exceptions import ConfigurationError
from repro.hashing import PStableLSH, SimHashLSH
from repro.index import FrozenMultiProbeLSHIndex, LSHIndex, MultiProbeLSHIndex
from repro.index.frozen import load_frozen_index, save_frozen_index


def build_pair(family="pstable", num_probes=3, n=300, dim=10, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, dim))
    fam = (
        PStableLSH(dim, w=2.0, seed=1)
        if family == "pstable"
        else SimHashLSH(dim, seed=1)
    )
    index = MultiProbeLSHIndex(
        fam, k=3, num_tables=5, num_probes=num_probes, seed=2
    ).build(points)
    return rng, points, index, index.freeze(refreeze_threshold=8)


def assert_equal_results(a, b):
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.distances, b.distances)
    assert a.stats.strategy == b.stats.strategy
    assert a.stats.num_collisions == b.stats.num_collisions


class TestFreeze:
    def test_freeze_returns_frozen_multiprobe(self):
        _, _, index, frozen = build_pair()
        assert isinstance(frozen, FrozenMultiProbeLSHIndex)
        assert frozen.layout == "frozen"
        assert frozen.variant == "multiprobe"
        assert frozen.num_probes == index.num_probes

    def test_unbuilt_rejected(self):
        index = MultiProbeLSHIndex(SimHashLSH(8, seed=0), k=2, num_tables=3)
        with pytest.raises(Exception):
            index.freeze()

    def test_probe_slots(self):
        _, _, index, frozen = build_pair(num_probes=3)
        assert frozen.num_slots == frozen.num_tables * 4
        assert frozen.probe_count == 3

    def test_probe_enumeration_may_run_dry(self):
        """k=1 binary hashes only have one flip; the frozen layout
        truncates exactly like the dict layout."""
        rng = np.random.default_rng(0)
        points = rng.normal(size=(120, 6))
        index = MultiProbeLSHIndex(
            SimHashLSH(6, seed=1), k=1, num_tables=4, num_probes=5, seed=2
        ).build(points)
        frozen = index.freeze()
        # one flip + nothing at weight 2 for k=1
        assert frozen.probe_count == 1
        for q in points[:5]:
            assert np.array_equal(
                index.candidate_ids(index.lookup(q)),
                frozen.candidate_ids(frozen.lookup(q)),
            )

    def test_zero_probes_degenerates_to_plain(self):
        rng, points, index, frozen = build_pair(num_probes=0)
        plain = LSHIndex(
            PStableLSH(10, w=2.0, seed=1), k=3, num_tables=5, seed=2
        ).build(points)
        q = points[0]
        assert np.array_equal(
            frozen.candidate_ids(frozen.lookup(q)),
            plain.candidate_ids(plain.lookup(q)),
        )


class TestBitIdentity:
    @pytest.mark.parametrize("family", ["pstable", "simhash"])
    def test_primitives_agree(self, family):
        rng, points, index, frozen = build_pair(family)
        queries = np.concatenate([rng.normal(size=(5, 10)), points[:2]])
        dict_lookups = index.lookup_batch(queries)
        frozen_lookups = frozen.lookup_batch(queries)
        for la, lb in zip(dict_lookups, frozen_lookups):
            assert la.num_collisions == lb.num_collisions
            assert np.array_equal(
                index.candidate_ids(la, dedup="vectorized"),
                frozen.candidate_ids(lb, dedup="vectorized"),
            )
            assert np.array_equal(
                index.candidate_ids(la, dedup="scalar"),
                frozen.candidate_ids(lb, dedup="scalar"),
            )
            assert np.array_equal(
                index.merged_sketch(la).registers,
                frozen.merged_sketch(lb).registers,
            )
        assert np.array_equal(
            index.merged_estimates_batch(dict_lookups),
            frozen.merged_estimates_batch(frozen_lookups),
        )

    @pytest.mark.parametrize("family", ["pstable", "simhash"])
    def test_queries_agree_single_and_batch(self, family):
        rng, points, index, frozen = build_pair(family)
        cm = CostModel.from_ratio(6.0)
        a, b = HybridSearcher(index, cm), HybridSearcher(frozen, cm)
        queries = np.concatenate([rng.normal(size=(6, 10)), points[:2]])
        for q in queries:
            assert_equal_results(a.query(q, 1.5), b.query(q, 1.5))
        for ra, rb in zip(a.query_batch(queries, 1.5), b.query_batch(queries, 1.5)):
            assert_equal_results(ra, rb)

    def test_insert_then_refreeze_agree(self):
        rng, points, index, frozen = build_pair()
        cm = CostModel.from_ratio(6.0)
        a, b = HybridSearcher(index, cm), HybridSearcher(frozen, cm)
        queries = np.concatenate([rng.normal(size=(4, 10)), points[:2]])
        new = rng.normal(size=(20, 10))
        assert np.array_equal(index.insert(new), frozen.insert(new))
        # Overflow generation live (insert crossed the threshold of 8,
        # so a background compaction may also be in flight).
        for q in queries:
            assert_equal_results(a.query(q, 1.5), b.query(q, 1.5))
        frozen.refreeze()
        assert frozen.overflow_count == 0
        for ra, rb in zip(a.query_batch(queries, 1.5), b.query_batch(queries, 1.5)):
            assert_equal_results(ra, rb)

    def test_probe_hits_inserted_points_in_overflow(self):
        """A probe (non-home) key must find overflow buckets too."""
        rng, points, index, frozen = build_pair(
            family="simhash", num_probes=4, seed=3
        )
        new = rng.normal(size=(6, 10))
        index.insert(new)
        frozen.insert(new)
        for q in rng.normal(size=(6, 10)):
            assert np.array_equal(
                index.candidate_ids(index.lookup(q)),
                frozen.candidate_ids(frozen.lookup(q)),
            )


class TestPersistence:
    def test_mmap_round_trip(self, tmp_path):
        rng, points, index, frozen = build_pair()
        path = str(tmp_path / "mp.frozen")
        save_frozen_index(frozen, path)
        reopened = load_frozen_index(path, mmap_mode="r")
        assert isinstance(reopened, FrozenMultiProbeLSHIndex)
        assert reopened.num_probes == frozen.num_probes
        # Arrays really are memory-mapped, not copies.
        assert isinstance(reopened.frozen.members, np.memmap)
        cm = CostModel.from_ratio(6.0)
        a, b = HybridSearcher(frozen, cm), HybridSearcher(reopened, cm)
        queries = np.concatenate([rng.normal(size=(5, 10)), points[:2]])
        for ra, rb in zip(a.query_batch(queries, 1.5), b.query_batch(queries, 1.5)):
            assert_equal_results(ra, rb)

    def test_insert_into_mmap_reopen(self, tmp_path):
        rng, points, index, frozen = build_pair()
        path = str(tmp_path / "mp.frozen")
        save_frozen_index(frozen, path)
        reopened = load_frozen_index(path, mmap_mode="r")
        new = rng.normal(size=(12, 10))
        frozen.insert(new)
        reopened.insert(new)
        frozen.refreeze()
        reopened.refreeze()
        cm = CostModel.from_ratio(6.0)
        a, b = HybridSearcher(frozen, cm), HybridSearcher(reopened, cm)
        for q in points[:4]:
            assert_equal_results(a.query(q, 1.5), b.query(q, 1.5))

    def test_dict_layout_npz_round_trip(self, tmp_path):
        """serialize.save_index/load_index preserve the variant."""
        from repro.index.serialize import load_index, save_index

        rng, points, index, _ = build_pair()
        path = str(tmp_path / "mp.npz")
        save_index(index, path)
        reopened = load_index(path)
        assert isinstance(reopened, MultiProbeLSHIndex)
        assert reopened.num_probes == index.num_probes
        for q in points[:4]:
            assert np.array_equal(
                index.candidate_ids(index.lookup(q)),
                reopened.candidate_ids(reopened.lookup(q)),
            )


class TestSpecAndFacade:
    def test_spec_round_trip(self):
        spec = IndexSpec(
            metric="l2", radius=1.0, variant="multiprobe", num_probes=4
        )
        assert IndexSpec.from_dict(spec.to_dict()) == spec

    def test_spec_rejects_bad_variant(self):
        with pytest.raises(ConfigurationError):
            IndexSpec(metric="l2", radius=1.0, variant="bogus")
        with pytest.raises(ConfigurationError):
            IndexSpec(metric="l2", radius=1.0, num_probes=-1)

    @pytest.mark.parametrize("layout", ["dict", "frozen"])
    def test_facade_layouts_agree(self, layout):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(400, 12))
        spec = IndexSpec(
            metric="l2", radius=1.0, num_tables=6,
            variant="multiprobe", num_probes=3, layout=layout, seed=1,
        )
        index = Index.build(points, spec)
        reference = Index.build(points, spec.with_overrides(layout="dict"))
        for ra, rb in zip(
            index.query(QuerySpec(points[:15])),
            reference.query(QuerySpec(points[:15])),
        ):
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)
        topk = index.query(QuerySpec(points[7], k=5))
        assert topk.ids.shape == (5,)
        assert int(topk.ids[0]) == 7

    def test_facade_save_open_sharded(self, tmp_path):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(400, 12))
        spec = IndexSpec(
            metric="l2", radius=1.0, num_tables=6, num_shards=3,
            variant="multiprobe", num_probes=3, layout="frozen", seed=1,
        )
        index = Index.build(points, spec)
        expected = index.query(QuerySpec(points[:10]))
        path = str(tmp_path / "artifact")
        index.save(path)
        reopened = Index.open(path)
        got = reopened.query(QuerySpec(points[:10]))
        for ra, rb in zip(expected, got):
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)
        reopened.close()
        index.close()


class TestProcesses:
    def test_worker_pool_matches_threads(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(400, 12))
        base = IndexSpec(
            metric="l2", radius=1.0, num_tables=6, num_shards=2,
            variant="multiprobe", num_probes=3, layout="frozen", seed=1,
        )
        threads = Index.build(points, base)
        processes = Index.build(points, base.with_overrides(execution="processes"))
        try:
            a = threads.query(QuerySpec(points[:12]))
            b = processes.query(QuerySpec(points[:12]))
            for ra, rb in zip(a, b):
                assert np.array_equal(ra.ids, rb.ids)
                assert np.array_equal(ra.distances, rb.distances)
            new = points[:4] + 1e-3
            assert np.array_equal(threads.insert(new), processes.insert(new))
            a = threads.query(QuerySpec(points[:12]))
            b = processes.query(QuerySpec(points[:12]))
            for ra, rb in zip(a, b):
                assert np.array_equal(ra.ids, rb.ids)
        finally:
            processes.close()
            threads.close()


# ----------------------------------------------------------------------
# Hypothesis properties (optional dependency, mirrors test_frozen_properties)
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis"
)
from hypothesis import given, settings
from hypothesis import strategies as st


@st.composite
def multiprobe_scenario(draw):
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(40, 140))
    dim = draw(st.integers(4, 10))
    k = draw(st.integers(1, 4))
    num_tables = draw(st.integers(2, 6))
    num_probes = draw(st.integers(0, 5))
    family = draw(st.sampled_from(["pstable", "simhash"]))
    num_queries = draw(st.integers(1, 5))
    num_inserts = draw(st.integers(0, 12))
    return seed, n, dim, k, num_tables, num_probes, family, num_queries, num_inserts


class TestMultiProbeProperties:
    @settings(max_examples=20, deadline=None)
    @given(multiprobe_scenario())
    def test_dict_and_frozen_layouts_agree_everywhere(self, scenario):
        (
            seed, n, dim, k, num_tables, num_probes, family,
            num_queries, num_inserts,
        ) = scenario
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, dim))
        fam = PStableLSH(dim, w=2.0) if family == "pstable" else SimHashLSH(dim)
        index = MultiProbeLSHIndex(
            fam, k=k, num_tables=num_tables, num_probes=num_probes, seed=seed
        ).build(points)
        frozen = index.freeze(refreeze_threshold=4)
        cm = CostModel.from_ratio(6.0)
        a, b = HybridSearcher(index, cm), HybridSearcher(frozen, cm)
        queries = np.concatenate([rng.normal(size=(num_queries, dim)), points[:2]])
        radius = float(0.5 + rng.uniform(0.0, 2.0))
        for q in queries:
            assert_equal_results(a.query(q, radius), b.query(q, radius))
        for ra, rb in zip(a.query_batch(queries, radius), b.query_batch(queries, radius)):
            assert_equal_results(ra, rb)
        if num_inserts:
            new = rng.normal(size=(num_inserts, dim))
            assert np.array_equal(index.insert(new), frozen.insert(new))
            for q in queries:
                assert_equal_results(a.query(q, radius), b.query(q, radius))
            frozen.refreeze()
            for ra, rb in zip(
                a.query_batch(queries, radius), b.query_batch(queries, radius)
            ):
                assert_equal_results(ra, rb)
