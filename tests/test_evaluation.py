"""Tests for metrics, ground truth and the query runner."""

import math

import numpy as np
import pytest

from repro.core import CostModel, HybridSearcher, LinearScan
from repro.evaluation import GroundTruth, mean_recall, recall, relative_error, run_queries, summarize
from repro.evaluation.metrics import Summary
from repro.hashing import PStableLSH
from repro.index import LSHIndex


class TestRecall:
    def test_perfect(self):
        assert recall(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_partial(self):
        assert recall(np.array([1, 2]), np.array([1, 2, 3, 4])) == 0.5

    def test_empty_truth(self):
        assert recall(np.array([1, 2]), np.array([])) == 1.0

    def test_empty_reported(self):
        assert recall(np.array([]), np.array([1, 2])) == 0.0

    def test_extra_reported_does_not_hurt(self):
        assert recall(np.array([1, 2, 3, 99]), np.array([1, 2, 3])) == 1.0

    def test_mean_recall(self):
        reported = [np.array([1]), np.array([2, 3])]
        truth = [np.array([1, 2]), np.array([2, 3])]
        assert mean_recall(reported, truth) == pytest.approx(0.75)

    def test_mean_recall_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_recall([np.array([1])], [])

    def test_mean_recall_empty(self):
        assert mean_recall([], []) == 1.0


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110, 100) == pytest.approx(0.1)

    def test_zero_exact_zero_estimate(self):
        assert relative_error(0, 0) == 0.0

    def test_zero_exact_nonzero_estimate(self):
        assert math.isinf(relative_error(5, 0))


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert isinstance(s, Summary)
        assert s.mean == 2.0
        assert s.min == 1.0
        assert s.max == 3.0
        assert s.count == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestGroundTruth:
    @pytest.fixture
    def gt(self, gaussian_points):
        return GroundTruth(gaussian_points[10:], gaussian_points[:10], "l2")

    def test_neighbors_match_linear_scan(self, gt, gaussian_points):
        scan = LinearScan(gaussian_points[10:], "l2")
        for i in range(3):
            expected = scan.query(gaussian_points[i], 1.5).ids
            assert np.array_equal(gt.neighbors(i, 1.5), expected)

    def test_distance_caching(self, gt):
        a = gt.distances(0)
        b = gt.distances(0)
        assert a is b

    def test_output_sizes(self, gt):
        sizes = gt.output_sizes(1.5)
        assert sizes.shape == (10,)
        assert np.all(sizes >= 0)

    def test_neighbor_sets(self, gt):
        sets = gt.neighbor_sets(1.0)
        assert len(sets) == 10

    def test_monotone_in_radius(self, gt):
        small = gt.output_sizes(0.5)
        large = gt.output_sizes(2.0)
        assert np.all(large >= small)


class TestRunQueries:
    @pytest.fixture
    def setup(self, gaussian_points):
        data, queries = gaussian_points[20:], gaussian_points[:20]
        index = LSHIndex(PStableLSH(16, w=2.0, p=2, seed=1), k=4, num_tables=8).build(data)
        searcher = HybridSearcher(index, CostModel.from_ratio(6.0))
        truth = GroundTruth(data, queries, "l2")
        return searcher, queries, truth

    def test_fields(self, setup):
        searcher, queries, truth = setup
        run = run_queries(searcher, queries, 1.0, "hybrid", repeats=2, ground_truth=truth)
        assert run.name == "hybrid"
        assert run.total_seconds > 0
        assert run.per_query_seconds == pytest.approx(run.total_seconds / 20)
        assert 0.0 <= run.recall <= 1.0
        assert run.output_sizes.shape == (20,)
        assert 0.0 <= run.linear_call_fraction <= 1.0
        assert len(run.results) == 20

    def test_no_ground_truth_gives_nan_recall(self, setup):
        searcher, queries, _ = setup
        run = run_queries(searcher, queries, 1.0, "hybrid", repeats=1)
        assert math.isnan(run.recall)

    def test_linear_scan_fraction_is_one(self, gaussian_points):
        scan = LinearScan(gaussian_points, "l2")
        run = run_queries(scan, gaussian_points[:5], 1.0, "linear", repeats=1)
        assert run.linear_call_fraction == 1.0

    def test_invalid_repeats(self, setup):
        searcher, queries, _ = setup
        with pytest.raises(Exception):
            run_queries(searcher, queries, 1.0, "x", repeats=0)
