"""The observability layer: histograms, tracing, stats, exposition.

Two properties anchor the design and are pinned with Hypothesis:

* **merge exactness** — merging per-worker/per-shard histograms yields
  bit-for-bit the bucket counts of one histogram fed the concatenated
  samples, so distributed aggregation never distorts the distribution;
* **tracing is timing-only** — enabling stage tracing on the facade
  returns byte-identical ids and distances to the untraced path.

The rest covers the supporting contracts: quantile semantics, JSON
round-trips, ``ServiceStats`` accounting/merge/reset, gauge hooks, and
the Prometheus text rendering (monotone cumulative buckets).
"""

import json
import math

import numpy as np
import pytest

from repro.api import Index, IndexSpec, QuerySpec
from repro.observability import STAGES, LatencyHistogram, StageTrace, prometheus_text, stage_timer
from repro.observability.tracing import _NULL_SPAN
from repro.service.stats import ServiceStats

hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis"
)
from hypothesis import given, settings
from hypothesis import strategies as st

durations = st.floats(
    min_value=1e-9, max_value=1e4, allow_nan=False, allow_infinity=False
)


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert math.isnan(h.quantile(0.5))

    def test_record_and_count(self):
        h = LatencyHistogram()
        h.record(0.001)
        h.record(0.002, count=3)
        assert h.count == 4
        assert h.total_seconds == pytest.approx(0.001 + 3 * 0.002)

    def test_quantile_is_conservative_upper_edge(self):
        h = LatencyHistogram()
        h.record(0.0009)  # lands in the bucket with upper edge 10**-3
        assert h.quantile(0.5) == pytest.approx(1e-3)
        assert h.quantile(0.99) == pytest.approx(1e-3)

    def test_quantile_monotone_in_p(self):
        h = LatencyHistogram()
        h.record_many(np.array([1e-5, 1e-4, 1e-3, 1e-2, 1e-1]))
        qs = [h.quantile(p) for p in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)

    def test_quantile_rejects_out_of_range(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_overflow_bucket_resolves_to_inf(self):
        h = LatencyHistogram()
        h.record(10.0 ** 3)  # beyond the largest finite edge (100 s)
        assert h.quantile(0.5) == float("inf")

    def test_record_many_equals_repeated_record(self):
        values = np.array([3e-6, 4e-4, 0.02, 0.02, 1.7])
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record_many(values)
        for v in values:
            b.record(float(v))
        assert np.array_equal(a.counts, b.counts)
        assert a.total_seconds == pytest.approx(b.total_seconds)

    def test_json_round_trip_is_exact(self):
        h = LatencyHistogram()
        h.record_many(np.array([1e-5, 2e-3, 0.4]))
        doc = json.loads(json.dumps(h.to_dict()))
        back = LatencyHistogram.from_dict(doc)
        assert back == h
        assert back.quantiles() == h.quantiles()

    def test_from_dict_rejects_foreign_scheme(self):
        doc = LatencyHistogram().to_dict()
        doc["scheme"] = "linear[0..1]x10"
        with pytest.raises(ValueError, match="scheme"):
            LatencyHistogram.from_dict(doc)

    def test_from_dict_rejects_wrong_bucket_count(self):
        doc = LatencyHistogram().to_dict()
        doc["counts"] = [0, 1, 2]
        with pytest.raises(ValueError, match="buckets"):
            LatencyHistogram.from_dict(doc)

    @settings(max_examples=50, deadline=None)
    @given(
        samples=st.lists(durations, max_size=60),
        split=st.integers(0, 60),
    )
    def test_merge_equals_concatenated_samples(self, samples, split):
        """The headline property: distributed merge is exact."""
        split = min(split, len(samples))
        left, right = LatencyHistogram(), LatencyHistogram()
        left.record_many(np.array(samples[:split]))
        right.record_many(np.array(samples[split:]))
        merged = LatencyHistogram().merge(left).merge(right)

        reference = LatencyHistogram()
        reference.record_many(np.array(samples))

        # Counts are integers: bit-for-bit equal, any regrouping.
        assert np.array_equal(merged.counts, reference.counts)
        # Quantiles resolve to bucket edges, so they are equal too.
        if samples:
            assert merged.quantiles() == reference.quantiles()
        # total_seconds is a float sum — approximate under reordering.
        assert merged.total_seconds == pytest.approx(reference.total_seconds)

    @settings(max_examples=25, deadline=None)
    @given(samples=st.lists(durations, min_size=1, max_size=40))
    def test_quantile_bounds_every_sample_distribution(self, samples):
        h = LatencyHistogram()
        h.record_many(np.array(samples))
        p100 = h.quantile(1.0)
        assert all(v <= p100 for v in samples)


class TestStageTrace:
    def test_add_and_merge(self):
        a, b = StageTrace(), StageTrace()
        a.add("hash", 0.5)
        b.add("hash", 0.25, calls=2)
        b.add("merge", 1.0)
        a.merge(b)
        assert a.seconds["hash"] == pytest.approx(0.75)
        assert a.calls["hash"] == 3
        assert a.total_seconds == pytest.approx(1.75)

    def test_as_dict_orders_known_stages_first(self):
        t = StageTrace()
        t.add("zcustom", 1.0)
        t.add("merge", 1.0)
        t.add("hash", 1.0)
        keys = list(t.as_dict())
        assert keys == ["hash", "merge", "zcustom"]
        assert all(s in STAGES for s in keys[:2])

    def test_stage_timer_records_wall_time(self):
        t = StageTrace()
        with stage_timer(t, "linear"):
            pass
        assert t.calls["linear"] == 1
        assert t.seconds["linear"] >= 0.0

    def test_stage_timer_none_is_shared_noop(self):
        # Disabled tracing must not allocate per call.
        assert stage_timer(None, "hash") is stage_timer(None, "linear") is _NULL_SPAN
        with stage_timer(None, "hash"):
            pass


class TestServiceStats:
    def test_record_batch_charges_each_query(self):
        stats = ServiceStats()
        stats.record_batch(8, 0.004, strategies={"lsh": 5, "linear": 3})
        assert stats.queries_served == 8
        assert stats.batches == 1
        assert stats.latency.count == 8
        assert stats.strategy_counts == {"lsh": 5, "linear": 3}

    def test_as_dict_round_trips_through_from_dict(self):
        stats = ServiceStats(pool_workers=3)
        trace = StageTrace()
        trace.add("hash", 0.01, calls=2)
        stats.record_batch(5, 0.002, strategies={"lsh": 5}, trace=trace)
        stats.bytes_shipped = 4096
        stats.gauges["overflow_points"] = 7.0

        doc = json.loads(json.dumps(stats.as_dict()))  # must be JSON-safe
        back = ServiceStats.from_dict(doc)
        assert back.queries_served == stats.queries_served
        assert back.pool_workers == 3
        assert back.bytes_shipped == 4096
        assert back.strategy_counts == stats.strategy_counts
        assert back.latency == stats.latency
        assert back.stage_seconds == stats.stage_seconds
        assert back.stage_calls == stats.stage_calls
        assert back.gauges == {"overflow_points": 7.0}
        # Round-tripping again is a fixed point.
        assert back.as_dict() == json.loads(json.dumps(doc))

    def test_as_dict_is_json_safe_and_keeps_flat_legacy_keys(self):
        stats = ServiceStats()
        stats.record_batch(2, 0.001, strategies={"lsh": 2})
        doc = stats.as_dict()
        json.dumps(doc)
        for key in ("queries_served", "batches", "qps", "pool_workers", "strategy_lsh"):
            assert key in doc

    def test_merge_sums_contributors(self):
        a, b = ServiceStats(pool_workers=4), ServiceStats(pool_workers=1)
        a.record_batch(3, 0.003)
        b.record_batch(2, 0.002)
        b.gauges["overflow_points"] = 2.0
        a.gauges["overflow_points"] = 1.0
        a.merge(b)
        assert a.queries_served == 5
        assert a.latency.count == 5
        assert a.pool_workers == 4  # aggregator's own width wins
        assert a.gauges["overflow_points"] == 3.0

    def test_reset_zeroes_traffic_but_keeps_structure(self):
        stats = ServiceStats(pool_workers=2)
        stats.gauge_hooks["live"] = lambda: 42.0
        stats.record_batch(4, 0.004, strategies={"linear": 4})
        stats.reset()
        assert stats.queries_served == 0
        assert stats.latency.count == 0
        assert stats.strategy_counts == {}
        assert stats.stage_seconds == {}
        assert stats.pool_workers == 2
        assert stats.read_gauges() == {"live": 42.0}

    def test_gauge_hooks_read_live_values(self):
        box = {"value": 1.0}
        stats = ServiceStats()
        stats.gauge_hooks["depth"] = lambda: box["value"]
        assert stats.as_dict()["gauges"] == {"depth": 1.0}
        box["value"] = 9.0
        assert stats.as_dict()["gauges"] == {"depth": 9.0}


class TestPrometheusText:
    @staticmethod
    def _sample_doc():
        stats = ServiceStats(pool_workers=2)
        trace = StageTrace()
        trace.add("hash", 0.02, calls=4)
        trace.add("linear", 0.10, calls=1)
        stats.record_batch(6, 0.012, strategies={"lsh": 4, "linear": 2}, trace=trace)
        stats.gauges["overflow_points"] = 3.0
        return stats.as_dict()

    def test_counters_and_gauges_rendered(self):
        text = prometheus_text(self._sample_doc())
        assert text.endswith("\n")
        assert "repro_queries_served_total 6" in text
        assert "repro_pool_workers 2" in text
        assert 'repro_strategy_queries_total{strategy="lsh"} 4' in text
        assert 'repro_stage_seconds_total{stage="hash"}' in text
        assert 'repro_stage_calls_total{stage="linear"} 1' in text
        assert "repro_overflow_points 3" in text

    def test_histogram_cdf_is_monotone_and_complete(self):
        text = prometheus_text(self._sample_doc())
        counts = []
        for line in text.splitlines():
            if line.startswith("repro_query_latency_seconds_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts, "no histogram buckets rendered"
        assert counts == sorted(counts)  # cumulative => monotone
        assert 'le="+Inf"' in text
        assert counts[-1] == 6  # +Inf bucket equals total count
        assert "repro_query_latency_seconds_count 6" in text
        assert "repro_query_latency_seconds_sum" in text

    def test_tolerates_minimal_and_unknown_keys(self):
        text = prometheus_text({"queries_served": 1, "mystery_key": 5})
        assert "repro_queries_served_total 1" in text
        assert "mystery" not in text

    def test_prefix_comment(self):
        text = prometheus_text({"queries_served": 0}, prefix_comment="serve snapshot")
        assert text.startswith("# serve snapshot\n")


@st.composite
def traced_workload(draw):
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(50, 140))
    dim = draw(st.integers(3, 8))
    num_queries = draw(st.integers(1, 6))
    num_shards = draw(st.sampled_from([1, 2]))
    rng = np.random.default_rng(seed)
    tight = rng.normal(scale=0.2, size=(n // 2, dim))
    loose = rng.uniform(-4.0, 4.0, size=(n - n // 2, dim))
    points = np.concatenate([tight, loose])
    queries = points[rng.choice(n, size=num_queries, replace=False)]
    return points, queries, seed, num_shards


class TestTracingBitIdentity:
    @settings(max_examples=15, deadline=None)
    @given(workload=traced_workload())
    def test_tracing_never_changes_answers(self, workload):
        """The second headline property: tracing observes, never steers."""
        points, queries, seed, num_shards = workload
        index = Index.build(
            points,
            IndexSpec(
                metric="l2", radius=1.0, num_tables=4,
                num_shards=num_shards, cost_ratio=6.0, seed=seed,
            ),
        )
        try:
            plain = index.query_batch(queries)
            index.enable_tracing(True)
            traced = index.query_batch(queries)
            topk_traced = index.query(QuerySpec(queries, k=3))
            index.enable_tracing(False)
            topk_plain = index.query(QuerySpec(queries, k=3))
            for a, b in zip(plain, traced):
                assert np.array_equal(a.ids, b.ids)
                assert np.array_equal(a.distances, b.distances)
            for a, b in zip(topk_plain, topk_traced):
                assert np.array_equal(a.ids, b.ids)
                assert np.array_equal(a.distances, b.distances)
        finally:
            index.close()

    def test_traced_queries_populate_stage_attribution(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(300, 8))
        index = Index.build(
            points,
            IndexSpec(metric="l2", radius=1.2, num_tables=6,
                      num_shards=2, cost_ratio=6.0, seed=1),
        )
        try:
            index.enable_tracing(True)
            index.query_batch(points[:10])
            stats = index.stats
            assert stats.stage_seconds, "tracing produced no stage attribution"
            assert set(stats.stage_seconds) <= set(STAGES)
            assert all(v >= 0.0 for v in stats.stage_seconds.values())
            assert "merge" in stats.stage_seconds  # sharded merge ran
        finally:
            index.close()

    def test_untraced_queries_record_no_stages(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(200, 6))
        index = Index.build(
            points,
            IndexSpec(metric="l2", radius=1.2, num_tables=4,
                      num_shards=1, cost_ratio=6.0, seed=2),
        )
        try:
            assert not index.tracing_enabled
            index.query_batch(points[:5])
            assert index.stats.stage_seconds == {}
        finally:
            index.close()


class TestStatsSnapshot:
    def test_snapshot_includes_gauges_and_latency(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(400, 8))
        index = Index.build(
            points,
            IndexSpec(metric="l2", radius=1.2, num_tables=6,
                      num_shards=2, layout="frozen", cost_ratio=6.0, seed=4),
        )
        try:
            index.query_batch(points[:12])
            snapshot = index.stats_snapshot()
            json.dumps(snapshot)
            assert snapshot["queries_served"] == 12
            assert snapshot["latency"]["count"] == 12
            # Frozen backends register live overflow/refreeze gauges.
            gauges = snapshot["gauges"]
            assert gauges["overflow_points"] == 0.0
            assert gauges["refreeze_generations"] == 0.0
            # Insert enough to trigger overflow accounting.
            index.insert(rng.normal(size=(3, 8)))
            assert index.stats_snapshot()["gauges"]["overflow_points"] == 3.0
        finally:
            index.close()
