"""Tests for memory accounting and batched hybrid queries."""

import numpy as np
import pytest

from repro.core import CostModel, HybridSearcher
from repro.exceptions import EmptyIndexError
from repro.hashing import PStableLSH
from repro.index import LSHIndex


class TestMemoryReport:
    def test_keys_present(self, l2_index):
        report = l2_index.memory_report()
        assert set(report) == {"points", "bucket_ids", "bucket_keys", "sketches", "total"}

    def test_total_is_sum(self, l2_index):
        report = l2_index.memory_report()
        assert report["total"] == (
            report["points"] + report["bucket_ids"] + report["bucket_keys"] + report["sketches"]
        )

    def test_bucket_ids_accounting(self, l2_index, gaussian_points):
        """Each point stored once per table at 8 bytes per id."""
        report = l2_index.memory_report()
        assert report["bucket_ids"] == 8 * gaussian_points.shape[0] * 10

    def test_paper_space_claim(self, gaussian_points):
        """§3.2: with the lazy threshold, sketch memory stays below the
        id storage of the buckets that carry sketches (m < 8m each)."""
        index = LSHIndex(
            PStableLSH(16, w=4.0, p=2, seed=1), k=2, num_tables=8, hll_precision=5
        ).build(gaussian_points)
        report = index.memory_report()
        assert report["sketches"] < report["bucket_ids"]

    def test_unbuilt_raises(self):
        index = LSHIndex(PStableLSH(4, w=1.0, p=2, seed=0), k=2, num_tables=2)
        with pytest.raises(EmptyIndexError):
            index.memory_report()


class TestQueryBatch:
    @pytest.fixture
    def hybrid(self, l2_index):
        return HybridSearcher(l2_index, CostModel.from_ratio(6.0))

    def test_matches_single_queries(self, hybrid, gaussian_points):
        queries = gaussian_points[:12]
        batch = hybrid.query_batch(queries, radius=1.2)
        for q, batched_result in zip(queries, batch):
            single = hybrid.query(q, radius=1.2)
            assert np.array_equal(batched_result.ids, single.ids)
            assert batched_result.stats.strategy == single.stats.strategy
            assert batched_result.stats.num_collisions == single.stats.num_collisions

    def test_stats_filled(self, hybrid, gaussian_points):
        results = hybrid.query_batch(gaussian_points[:3], radius=1.0)
        for result in results:
            assert result.stats.estimated_lsh_cost >= 0
            assert result.stats.linear_cost > 0

    def test_invalid_radius(self, hybrid, gaussian_points):
        with pytest.raises(Exception):
            hybrid.query_batch(gaussian_points[:3], radius=0.0)
