"""Tests for the spec-driven Index facade.

The facade's contract is delegation without deviation: answers must be
bit-identical to the legacy engines it wraps, for every request shape
(radius / top-k / batch, single index / sharded), while adding the
spec-driven construction, uniform query surface, per-shard cache
invalidation, and plugin registries.
"""

import json

import numpy as np
import pytest

from repro.api import (
    Index,
    IndexSpec,
    QuerySpec,
    available_estimators,
    available_families,
    get_estimator,
    register_estimator,
    register_family,
)
from repro.core import CostModel
from repro.core.hybrid import HybridLSH
from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.service.sharded import ShardedHybridIndex
from repro.service.stream import serve_stream


def _spec(**overrides):
    base = dict(metric="l2", radius=1.0, num_tables=6, cost_ratio=6.0, seed=1)
    base.update(overrides)
    return IndexSpec(**base)


@pytest.fixture
def single_index(gaussian_points) -> Index:
    return Index.build(gaussian_points, _spec())


@pytest.fixture
def sharded_index(gaussian_points) -> Index:
    return Index.build(gaussian_points, _spec(num_shards=4))


class TestBuildParity:
    def test_single_build_matches_legacy_hybrid(self, gaussian_points):
        """Default spec == HybridLSH with the same seed, bit for bit."""
        index = Index.build(gaussian_points, _spec())
        legacy = HybridLSH(
            gaussian_points, metric="l2", radius=1.0, num_tables=6,
            cost_model=CostModel.from_ratio(6.0), seed=1,
        )
        for qi in (0, 101, 599):
            a = index.query(QuerySpec(gaussian_points[qi]))
            b = legacy.query(gaussian_points[qi])
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)
            assert a.stats.strategy == b.stats.strategy

    def test_sharded_build_matches_legacy_sharded(self, gaussian_points):
        index = Index.build(gaussian_points, _spec(num_shards=3))
        legacy = ShardedHybridIndex(
            gaussian_points, metric="l2", radius=1.0, num_shards=3,
            num_tables=6, cost_model=CostModel.from_ratio(6.0), seed=1,
        )
        a = index.query(QuerySpec(gaussian_points[:20]))
        b = legacy.query_batch(gaussian_points[:20])
        for x, y in zip(a, b):
            assert np.array_equal(x.ids, y.ids)
            assert np.array_equal(x.distances, y.distances)

    def test_build_accepts_raw_spec_document(self, gaussian_points):
        index = Index.build(
            gaussian_points,
            {"metric": "l2", "radius": 1.0, "num_tables": 6, "seed": 1},
        )
        assert isinstance(index.spec, IndexSpec)
        assert index.n == gaussian_points.shape[0]

    def test_custom_k_and_family_by_name(self, gaussian_points):
        index = Index.build(
            gaussian_points,
            _spec(hash_family="pstable_l2", bucket_width=2.0, k=4),
        )
        assert index.engine.index.k == 4
        result = index.query(QuerySpec(gaussian_points[0]))
        assert 0 in result.ids

    def test_sharded_build_honours_custom_spec(self, gaussian_points):
        """Custom k/family/width specs now build sharded too (PR 4)."""
        index = Index.build(
            gaussian_points,
            _spec(num_shards=2, hash_family="pstable_l2", bucket_width=2.0, k=4),
        )
        assert index.num_shards == 2
        assert all(shard.index.k == 4 for shard in index.engine.shards)
        result = index.query(QuerySpec(gaussian_points[0]))
        assert 0 in result.ids
        index.close()

    def test_sharded_custom_spec_persists_and_reopens(self, gaussian_points, tmp_path):
        index = Index.build(
            gaussian_points, _spec(num_shards=2, k=4, lazy_threshold=16)
        )
        path = str(tmp_path / "custom-sharded")
        index.save(path)
        reopened = Index.open(path)
        queries = gaussian_points[:8]
        for ra, rb in zip(index.query_batch(queries), reopened.query_batch(queries)):
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)
        index.close(), reopened.close()

    def test_spec_dedup_reaches_sharded_engines(self, gaussian_points):
        index = Index.build(gaussian_points, _spec(num_shards=2, dedup="scalar"))
        assert all(e.dedup == "scalar" for e in index.engine._engines)


class TestQuerySurface:
    def test_single_vector_returns_one_result(self, single_index, gaussian_points):
        result = single_index.query(QuerySpec(gaussian_points[0]))
        assert 0 in result.ids

    def test_matrix_returns_list(self, single_index, gaussian_points):
        results = single_index.query(QuerySpec(gaussian_points[:5]))
        assert [int(r.ids[0]) for r in results] == [0, 1, 2, 3, 4]

    def test_raw_ndarray_convenience(self, single_index, gaussian_points):
        result = single_index.query(gaussian_points[0], radius=0.5)
        assert 0 in result.ids

    def test_radius_in_both_places_rejected(self, single_index, gaussian_points):
        with pytest.raises(ConfigurationError):
            single_index.query(QuerySpec(gaussian_points[0], radius=1.0), radius=2.0)

    def test_topk_single_matches_sharded(self, gaussian_points):
        """Exact top-k must agree between 1-shard and K-shard layouts."""
        single = Index.build(gaussian_points, _spec())
        sharded = Index.build(gaussian_points, _spec(num_shards=4))
        for qi in (0, 250, 510):
            a = single.query(QuerySpec(gaussian_points[qi], k=7))
            b = sharded.query(QuerySpec(gaussian_points[qi], k=7))
            assert np.array_equal(a.ids, b.ids)
            assert np.allclose(a.distances, b.distances)

    def test_topk_k_exceeding_n_rejected(self, single_index, gaussian_points):
        with pytest.raises(ConfigurationError):
            single_index.query(QuerySpec(gaussian_points[0], k=single_index.n + 1))

    def test_dimension_mismatch_rejected(self, single_index):
        with pytest.raises(DimensionMismatchError):
            single_index.query(QuerySpec(np.zeros(3)))

    def test_stats_accumulate(self, single_index, gaussian_points):
        single_index.query(QuerySpec(gaussian_points[:10]))
        single_index.query(QuerySpec(gaussian_points[0], k=3))
        assert single_index.stats.queries_served == 11
        assert single_index.stats.batches == 2
        assert sum(single_index.stats.strategy_counts.values()) == 11


class TestInsertAndCacheInvalidation:
    def test_insert_visible_to_next_query(self, sharded_index, gaussian_points):
        new = gaussian_points[:2] + 1e-5
        ids = sharded_index.insert(new)
        assert ids.tolist() == [600, 601]
        result = sharded_index.query(QuerySpec(gaussian_points[0]))
        assert 600 in result.ids

    def test_insert_only_invalidates_affected_shards(self, gaussian_points):
        """The ROADMAP item: whole-cache drops become per-shard drops."""
        index = Index.build(
            gaussian_points, _spec(num_shards=4, cache_size=256)
        )
        index.query(QuerySpec(gaussian_points[:6]))
        assert len(index.cache) == 6 * 4  # one partial per (query, shard)
        # One point routes to exactly one shard; the other 3 shards'
        # partials must survive.
        index.insert(gaussian_points[:1] + 2e-5)
        assert len(index.cache) == 6 * 3

    def test_cached_sharded_answers_stay_correct_after_insert(self, gaussian_points):
        cached = Index.build(gaussian_points, _spec(num_shards=3, cache_size=512))
        bare = Index.build(gaussian_points, _spec(num_shards=3))
        queries = gaussian_points[:8]
        cached.query(QuerySpec(queries))  # warm the cache
        new = queries[:3] + 1e-5
        cached.insert(new)
        bare.insert(new)
        a = cached.query(QuerySpec(queries))  # part cached, part recomputed
        b = bare.query(QuerySpec(queries))
        for x, y in zip(a, b):
            assert np.array_equal(x.ids, y.ids)
            assert np.array_equal(x.distances, y.distances)

    def test_cache_hits_count_full_hits_only(self, gaussian_points):
        index = Index.build(gaussian_points, _spec(num_shards=2, cache_size=64))
        index.query(QuerySpec(gaussian_points[0]))
        index.query(QuerySpec(gaussian_points[0]))
        assert index.stats.cache_misses == 1
        assert index.stats.cache_hits == 1

    def test_single_backend_insert_clears_its_partition(self, gaussian_points):
        index = Index.build(gaussian_points, _spec(cache_size=64))
        before = index.query(QuerySpec(gaussian_points[0]))
        ids = index.insert(gaussian_points[:1] + 1e-5)
        after = index.query(QuerySpec(gaussian_points[0]))
        assert ids[0] in after.ids and ids[0] not in before.ids


class TestRegistries:
    def test_builtin_families_present(self):
        names = available_families()
        for name in ("bit_sampling", "simhash", "pstable_l1", "pstable_l2", "minhash"):
            assert name in names

    def test_builtin_estimators_present(self):
        names = available_estimators()
        for name in ("hll", "kmv", "exact"):
            assert name in names

    def test_register_custom_estimator_and_use_in_spec(self, gaussian_points):
        calls = []

        def pessimist(index, lookup):
            calls.append(1)
            return float(index.n)  # always estimates "everything collides"

        register_estimator("pessimist-test", pessimist)
        index = Index.build(gaussian_points, _spec(estimator="pessimist-test"))
        result = index.query(QuerySpec(gaussian_points[0]))
        assert calls  # the spec-resolved estimator actually ran
        assert result.stats.strategy.value == "linear"  # cost pushed to linear

    def test_register_custom_family_and_use_in_spec(self, gaussian_points):
        from repro.hashing.pstable import PStableLSH

        def narrow_l2(dim, seed=None, **kwargs):
            kwargs.setdefault("w", 1.0)
            return PStableLSH(dim, p=2, seed=seed, **kwargs)

        register_family("narrow-l2-test", narrow_l2)
        index = Index.build(
            gaussian_points, _spec(hash_family="narrow-l2-test", k=5)
        )
        assert index.engine.index.family.w == 1.0
        assert 0 in index.query(QuerySpec(gaussian_points[0])).ids

    def test_estimator_matches_between_single_and_batch(self, gaussian_points):
        index = Index.build(gaussian_points, _spec(estimator="exact"))
        queries = gaussian_points[:6]
        batch = index.query(QuerySpec(queries))
        for qi, res in enumerate(batch):
            solo = index.query(QuerySpec(queries[qi]))
            assert np.array_equal(res.ids, solo.ids)
            assert res.stats.estimated_candidates == solo.stats.estimated_candidates

    def test_get_estimator_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_estimator("no-such-estimator")

    def test_replaced_hll_estimator_is_honoured(self, gaussian_points):
        """Re-registering "hll" (documented as supported) must actually
        route spec-built indexes through the replacement."""
        from repro.sketches.registry import _hll_estimate

        calls = []

        def custom_hll(index, lookup):
            calls.append(1)
            return _hll_estimate(index, lookup)

        register_estimator("hll", custom_hll)
        try:
            index = Index.build(gaussian_points, _spec(estimator="hll"))
            index.query(QuerySpec(gaussian_points[0]))
            assert calls
        finally:
            register_estimator("hll", _hll_estimate, aliases=("hyperloglog",))

    def test_user_registration_before_builtins_does_not_suppress_them(self):
        """Regression: registering a name early must not stop the lazy
        builtin pass, nor clobber a user's metric default with a builtin."""
        import subprocess
        import sys

        code = (
            "from repro.hashing.base import register_family, get_family, "
            "family_for_metric\n"
            "from repro.sketches.registry import register_estimator, get_estimator\n"
            "class Fam:  # registered before any registry lookup\n"
            "    def __init__(self, dim, seed=None): self.dim = dim\n"
            "register_family('simhash', Fam, metric='l2')\n"
            "register_estimator('hll', lambda index, lookup: 0.0)\n"
            "assert get_family('pstable_l1') is not None  # builtins still load\n"
            "assert get_estimator('kmv') is not None\n"
            "assert isinstance(family_for_metric('l2', 4), Fam)  # user default kept\n"
            "assert get_family('simhash') is Fam  # user override kept\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)


class TestStreamSpecOps:
    def test_spec_save_open_create_roundtrip(self, sharded_index, gaussian_points, tmp_path):
        saved = str(tmp_path / "served-index")
        lines = [
            json.dumps({"op": "spec"}),
            json.dumps({"op": "save", "path": saved}),
            json.dumps({"query": gaussian_points[0].tolist()}),
            json.dumps({"op": "open", "path": saved}),
            json.dumps({"query": gaussian_points[0].tolist()}),
            json.dumps(
                {
                    "op": "create",
                    "spec": {"metric": "l2", "radius": 1.0, "num_tables": 4, "seed": 2},
                    "points": gaussian_points[:50].tolist(),
                }
            ),
            json.dumps({"query": gaussian_points[0].tolist()}),
        ]
        out = [json.loads(line) for line in serve_stream(sharded_index, lines)]
        assert out[0]["spec"]["metric"] == "l2"
        assert out[0]["spec"]["num_shards"] == 4
        assert out[1] == {"saved": saved}
        assert out[3]["opened"] == saved and out[3]["n"] == 600
        assert out[4] == out[2]  # reopened index answers identically
        assert out[5]["created"] is True and out[5]["n"] == 50
        assert 0 in out[6]["ids"]

    def test_topk_over_the_wire(self, single_index, gaussian_points):
        lines = [json.dumps({"query": gaussian_points[0].tolist(), "k": 5})]
        out = [json.loads(line) for line in serve_stream(single_index, lines)]
        assert out[0]["found"] == 5
        assert out[0]["ids"][0] == 0

    def test_radius_and_k_together_is_an_error_line(self, single_index, gaussian_points):
        lines = [
            json.dumps({"query": gaussian_points[0].tolist(), "k": 5, "radius": 1.0})
        ]
        out = [json.loads(line) for line in serve_stream(single_index, lines)]
        assert "error" in out[0]

    def test_spec_op_on_legacy_service_reports_error(self, gaussian_points):
        from repro.service import BatchQueryEngine, QueryService

        engine = BatchQueryEngine.from_points(
            gaussian_points, metric="l2", radius=1.0, num_tables=6,
            cost_model=CostModel.from_ratio(6.0), seed=1,
        )
        service = QueryService(engine)
        out = [
            json.loads(line)
            for line in serve_stream(service, [json.dumps({"op": "spec"})])
        ]
        assert "error" in out[0]


class TestStreamTelemetryOps:
    def test_stats_op_returns_enriched_snapshot(self, sharded_index, gaussian_points):
        lines = [
            json.dumps({"query": q.tolist()}) for q in gaussian_points[:6]
        ] + [json.dumps({"op": "stats"})]
        out = [json.loads(line) for line in serve_stream(sharded_index, lines)]
        snapshot = out[-1]
        assert snapshot["queries_served"] == 6
        assert snapshot["latency"]["count"] == 6
        # The cumulative bucket counts must form a monotone CDF that
        # accounts for every served query.
        counts = snapshot["latency"]["counts"]
        assert all(c >= 0 for c in counts)
        assert sum(counts) == 6
        assert snapshot["latency"]["p50"] <= snapshot["latency"]["p99"]
        assert "gauges" in snapshot and "stages" in snapshot

    def test_metrics_op_returns_prometheus_text(self, sharded_index, gaussian_points):
        lines = [
            json.dumps({"query": q.tolist()}) for q in gaussian_points[:4]
        ] + [json.dumps({"op": "metrics"})]
        out = [json.loads(line) for line in serve_stream(sharded_index, lines)]
        text = out[-1]["metrics"]
        assert "repro_queries_served_total 4" in text
        assert "# TYPE repro_query_latency_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_query_latency_seconds_count 4" in text

    def test_traced_index_ships_stage_metrics(self, sharded_index, gaussian_points):
        sharded_index.enable_tracing(True)
        lines = [
            json.dumps({"query": q.tolist()}) for q in gaussian_points[:4]
        ] + [json.dumps({"op": "metrics"})]
        out = [json.loads(line) for line in serve_stream(sharded_index, lines)]
        text = out[-1]["metrics"]
        assert 'repro_stage_seconds_total{stage="hash"}' in text
        assert 'repro_stage_seconds_total{stage="merge"}' in text
