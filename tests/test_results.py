"""Tests for the result/statistics types."""

import numpy as np
import pytest

from repro.core.results import QueryResult, QueryStats, Strategy


class TestStrategy:
    def test_values(self):
        assert Strategy.LSH.value == "lsh"
        assert Strategy.LINEAR.value == "linear"

    def test_string_comparison(self):
        assert Strategy.LSH == "lsh"


class TestQueryStats:
    def test_defaults(self):
        stats = QueryStats()
        assert stats.num_collisions == 0
        assert np.isnan(stats.estimated_candidates)
        assert stats.exact_candidates == -1
        assert stats.strategy == Strategy.LSH


class TestQueryResult:
    @pytest.fixture
    def result(self):
        return QueryResult(
            ids=np.array([2, 5, 9]),
            distances=np.array([0.1, 0.5, 0.9]),
            radius=1.0,
        )

    def test_output_size(self, result):
        assert result.output_size == 3

    def test_recall_perfect(self, result):
        assert result.recall_against(np.array([2, 5, 9])) == 1.0

    def test_recall_partial(self, result):
        assert result.recall_against(np.array([2, 5, 9, 11])) == 0.75

    def test_recall_empty_truth(self, result):
        assert result.recall_against(np.array([])) == 1.0

    def test_recall_zero(self, result):
        assert result.recall_against(np.array([100, 200])) == 0.0

    def test_repr(self, result):
        text = repr(result)
        assert "found=3" in text
        assert "lsh" in text

    def test_empty_result(self):
        result = QueryResult(
            ids=np.empty(0, dtype=np.int64),
            distances=np.empty(0),
            radius=0.5,
        )
        assert result.output_size == 0
        assert result.recall_against(np.array([1])) == 0.0
