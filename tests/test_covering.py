"""Tests for the covering LSH index (no-false-negative guarantee)."""

import numpy as np
import pytest

from repro.core import CostModel, HybridSearcher, LinearScan, LSHSearch
from repro.exceptions import ConfigurationError, EmptyIndexError
from repro.index import CoveringLSHIndex


@pytest.fixture
def covering_index(binary_points):
    return CoveringLSHIndex(dim=32, radius=4, seed=1).build(binary_points)


class TestConstruction:
    def test_table_count_is_r_plus_1(self, covering_index):
        assert covering_index.num_tables == 5
        assert len(covering_index.tables) == 5

    def test_blocks_partition_dimensions(self):
        index = CoveringLSHIndex(dim=32, radius=4, seed=1)
        all_positions = np.concatenate(index._blocks)
        assert sorted(all_positions.tolist()) == list(range(32))

    def test_radius_must_be_below_dim(self):
        with pytest.raises(ConfigurationError):
            CoveringLSHIndex(dim=8, radius=8)

    def test_invalid_dedup(self):
        with pytest.raises(ConfigurationError):
            CoveringLSHIndex(dim=8, radius=2, dedup="bogus")

    def test_unbuilt_raises(self):
        index = CoveringLSHIndex(dim=8, radius=2)
        with pytest.raises(EmptyIndexError):
            index.lookup(np.zeros(8))


class TestCoveringGuarantee:
    def test_no_false_negatives(self, covering_index, binary_points):
        """Every point within the construction radius MUST be a candidate.

        This is the covering property: r differing bits cannot touch all
        r + 1 blocks, so some block matches exactly.
        """
        scan = LinearScan(binary_points, "hamming")
        searcher = LSHSearch(covering_index)
        for i in range(0, 60, 7):
            q = binary_points[i]
            true_ids = scan.query(q, radius=4.0).ids
            reported = searcher.query(q, radius=4.0).ids
            assert np.array_equal(reported, true_ids)

    def test_guarantee_holds_for_adversarial_flips(self, rng):
        """Flipping exactly r bits anywhere still collides somewhere."""
        dim, radius = 24, 3
        base = rng.integers(0, 2, size=dim).astype(np.uint8)
        variants = []
        for _ in range(40):
            flipped = base.copy()
            positions = rng.choice(dim, size=radius, replace=False)
            flipped[positions] ^= 1
            variants.append(flipped)
        points = np.stack([base] + variants)
        index = CoveringLSHIndex(dim=dim, radius=radius, seed=0).build(points)
        candidates = index.candidate_ids(index.lookup(base))
        assert np.array_equal(candidates, np.arange(points.shape[0]))

    def test_beyond_radius_not_guaranteed_but_allowed(self, covering_index, binary_points):
        """Queries past the construction radius still work (subset of truth)."""
        scan = LinearScan(binary_points, "hamming")
        searcher = LSHSearch(covering_index)
        q = binary_points[0]
        reported = set(searcher.query(q, radius=10.0).ids.tolist())
        true_ids = set(scan.query(q, radius=10.0).ids.tolist())
        assert reported <= true_ids


class TestHybridOnCovering:
    def test_hybrid_searcher_works(self, covering_index, binary_points):
        hybrid = HybridSearcher(covering_index, CostModel.from_ratio(1.0))
        result = hybrid.query(binary_points[3], radius=4.0)
        assert 3 in result.ids

    def test_hybrid_is_exact_at_construction_radius(self, covering_index, binary_points):
        """Covering guarantee + exact linear fallback => recall 1.0."""
        hybrid = HybridSearcher(covering_index, CostModel.from_ratio(1.0))
        scan = LinearScan(binary_points, "hamming")
        for i in (0, 11, 47):
            q = binary_points[i]
            assert np.array_equal(
                hybrid.query(q, radius=4.0).ids, scan.query(q, radius=4.0).ids
            )

    def test_sketch_estimate_available(self, covering_index, binary_points):
        lookup = covering_index.lookup(binary_points[0])
        exact = covering_index.candidate_ids(lookup).size
        estimate = covering_index.merged_sketch(lookup).estimate()
        assert exact > 0
        assert abs(estimate - exact) / exact < 0.5

    def test_collisions_are_large(self, covering_index, binary_points):
        """Short block hashes => big buckets — the regime the paper says
        most needs cost estimation."""
        lookup = covering_index.lookup(binary_points[0])
        assert lookup.num_collisions > covering_index.num_tables

    def test_repr(self, covering_index):
        assert "CoveringLSHIndex" in repr(covering_index)
