"""Tests for the Equation (1)/(2) cost model."""

import pytest

from repro.core import CostModel, Strategy
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_basic(self):
        model = CostModel(alpha=1.0, beta=10.0)
        assert model.beta_over_alpha == 10.0

    @pytest.mark.parametrize("alpha,beta", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_invalid_constants(self, alpha, beta):
        with pytest.raises(ConfigurationError):
            CostModel(alpha=alpha, beta=beta)

    def test_from_ratio(self):
        model = CostModel.from_ratio(6.0)
        assert model.alpha == 1.0
        assert model.beta == 6.0

    def test_from_ratio_with_alpha(self):
        model = CostModel.from_ratio(10.0, alpha=2.0)
        assert model.beta == 20.0
        assert model.beta_over_alpha == 10.0

    def test_from_ratio_invalid(self):
        with pytest.raises(ConfigurationError):
            CostModel.from_ratio(0.0)

    def test_frozen(self):
        model = CostModel(alpha=1.0, beta=2.0)
        with pytest.raises(AttributeError):
            model.alpha = 5.0


class TestCosts:
    def test_equation_1(self):
        model = CostModel(alpha=2.0, beta=3.0)
        assert model.lsh_cost(num_collisions=10, cand_size=4.0) == 2 * 10 + 3 * 4

    def test_equation_2(self):
        model = CostModel(alpha=2.0, beta=3.0)
        assert model.linear_cost(n=100) == 300.0

    def test_zero_collisions(self):
        model = CostModel(alpha=1.0, beta=1.0)
        assert model.lsh_cost(0, 0.0) == 0.0

    def test_negative_inputs_raise(self):
        model = CostModel(alpha=1.0, beta=1.0)
        with pytest.raises(ConfigurationError):
            model.lsh_cost(-1, 0.0)
        with pytest.raises(ConfigurationError):
            model.lsh_cost(0, -1.0)
        with pytest.raises(ConfigurationError):
            model.linear_cost(-5)


class TestChoose:
    def test_easy_query_picks_lsh(self):
        model = CostModel.from_ratio(10.0)
        # 50 collisions, ~20 candidates vs n = 10,000.
        assert model.choose(50, 20.0, 10_000) == Strategy.LSH

    def test_hard_query_picks_linear(self):
        model = CostModel.from_ratio(10.0)
        # Collisions alone exceed the linear budget.
        assert model.choose(200_000, 9_000.0, 10_000) == Strategy.LINEAR

    def test_tie_goes_to_linear(self):
        """Algorithm 2 uses strict <, so equality runs the exact scan."""
        model = CostModel(alpha=1.0, beta=1.0)
        # lsh = 50 + 50 = 100 = linear
        assert model.choose(50, 50.0, 100) == Strategy.LINEAR

    def test_ratio_shifts_crossover(self):
        """Higher beta/alpha makes duplicate removal relatively cheaper."""
        cheap_dedup = CostModel.from_ratio(10.0)
        costly_dedup = CostModel.from_ratio(0.5)
        collisions, cand, n = 3_000, 500.0, 1_000
        assert cheap_dedup.choose(collisions, cand, n) == Strategy.LSH
        assert costly_dedup.choose(collisions, cand, n) == Strategy.LINEAR

    def test_repr(self):
        assert "beta/alpha" in repr(CostModel.from_ratio(3.0))
