"""True-positive fixture for the ``dtype-contract`` rule.

Lives under an ``index/`` path segment so the rule's scoping applies.
Deliberately broken — excluded from lint, never imported.
"""

import numpy as np


def build_layout(counts, ids):
    offsets = np.zeros(len(counts) + 1, dtype=np.int32)
    members = ids.astype(np.int64)
    flat = np.asarray(members, dtype=np.int32)
    return offsets, members, flat
