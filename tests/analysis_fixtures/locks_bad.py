"""True-positive fixture for the ``lock-discipline`` rule.

``add`` declares ``_items`` shared by mutating it under the lock;
``drop_all`` then mutates it bare.  Deliberately broken — excluded
from lint, never imported.
"""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def add(self, item):
        with self._lock:
            self._items.append(item)

    def drop_all(self):
        self._items.clear()
