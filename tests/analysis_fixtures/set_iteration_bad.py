"""True-positive fixture for the ``set-iteration`` rule.

Deliberately broken — excluded from lint, never imported.
"""


def collect(extra):
    out = []
    for gid in {3, 1, 2}:
        out.append(gid)
    out.extend(list(extra.keys()))
    return out
