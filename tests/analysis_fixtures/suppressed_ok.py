"""Suppression fixture: same violation as ``determinism_bad.py``, but
silenced by the inline ``reprolint: disable`` comment — reprolint must
report nothing here.
"""

import numpy as np


def draw_noise(n):
    return np.random.rand(n)  # reprolint: disable=unseeded-rng
