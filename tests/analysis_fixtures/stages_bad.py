"""True-positive fixture for the ``trace-stage`` rule.

One stage outside the closed vocabulary, one computed stage name.
Deliberately broken — excluded from lint, never imported.
"""

from repro.observability.tracing import StageTrace, stage_timer


def timed(trace: StageTrace, label: str):
    with stage_timer(trace, "warmup"):
        pass
    with stage_timer(trace, label):
        pass
