"""True-positive fixture for the ``unseeded-rng`` rule.

Deliberately broken — excluded from lint, never imported; reprolint
must report every draw below.
"""

import numpy as np


def draw_noise(n):
    return np.random.rand(n)


def make_stream():
    return np.random.default_rng()
