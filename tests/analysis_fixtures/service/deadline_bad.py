"""Fixture: unbounded pipe waits in a service/ module (deadline-required).

Both shapes the rule forbids: a ``recv()`` with no bounded ``poll``
guard anywhere in its function, and an explicit ``poll(None)``.
"""


def unguarded_recv(conn):
    # No poll guard at all: a dead peer parks this thread forever.
    return conn.recv()


def explicit_unbounded_poll(conn):
    if conn.poll(None):
        return conn.recv()
    return None


def guarded_recv_is_fine(conn, seconds):
    if not conn.poll(seconds):
        raise TimeoutError("deadline")
    return conn.recv()
