"""Fixture: unbounded socket waits in a service/ module (deadline-required).

The socket shapes the extended rule forbids: a framed ``recv()`` with
no bounded ``settimeout`` guard, an ``accept()`` / ``connect()``
rendezvous with no bounded ``settimeout``, and an explicit
``settimeout(None)`` (which flips the socket back to unbounded
blocking mode).  The final two functions are the compliant spellings
and must report nothing.
"""


def unguarded_socket_recv(sock):
    # No settimeout guard: a silent peer parks this thread forever.
    return sock.recv(4096)


def unguarded_accept(listener):
    # A client that never shows up parks the listener thread.
    return listener.accept()


def unguarded_connect(sock, address):
    # A black-holed peer parks a reconnect attempt indefinitely.
    sock.connect(address)
    return sock


def explicit_unbounded_settimeout(sock):
    sock.settimeout(None)
    return sock


def timed_recv_is_fine(sock, seconds):
    sock.settimeout(seconds)
    return sock.recv(4096)


def timed_rendezvous_is_fine(listener, sock, address, seconds):
    listener.settimeout(seconds)
    sock.settimeout(seconds)
    sock.connect(address)
    return listener.accept()
