"""spec-plumb fixture consumer: reads ``radius`` only."""


def save(spec):
    return {"radius": spec.radius}
