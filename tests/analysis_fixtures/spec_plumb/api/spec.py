"""True-positive fixture for the ``spec-plumb`` rule: the spec side of
a miniature project tree.  ``dead_knob`` is read by none of the sibling
consumer files, so reprolint must flag it.  Never imported.
"""


class IndexSpec:
    metric: str = "l2"
    radius: float = 1.0
    dead_knob: int = 0
