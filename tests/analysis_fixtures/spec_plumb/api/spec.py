"""True-positive fixture for the ``spec-plumb`` rule: the spec side of
a miniature project tree.  ``IndexSpec.dead_knob`` is read by none of
the sibling consumer files and ``QuerySpec.dead_request_knob`` by
neither the facade nor the stream front-end, so reprolint must flag
both.  Never imported.
"""


class IndexSpec:
    metric: str = "l2"
    radius: float = 1.0
    dead_knob: int = 0


class QuerySpec:
    k: int = 10
    adaptive: bool = False
    dead_request_knob: int = 0
