"""spec-plumb fixture consumer: reads ``metric`` only."""


def build(spec):
    return spec.metric
