"""spec-plumb fixture consumer: reads ``metric`` and ``radius``."""


def layout(spec):
    return [spec.metric, spec.radius]
