"""spec-plumb fixture consumer: reads ``k`` and ``adaptive`` only."""


def serve(request):
    if request.adaptive:
        return request.k
    return None
