"""The concurrent request loop must be observationally synchronous.

``serve_stream_concurrent`` overlaps in-flight batches behind a reader
thread, but the wire contract is unchanged: same responses as
``serve_stream``, in request order, with ops and top-k acting as
barriers.  These tests replay mixed request scripts through both loops
and require byte-equal response sequences (modulo timing counters in
the stats payload).
"""

import json

import numpy as np
import pytest

from repro.api import Index, IndexSpec
from repro.service.stream import serve_stream, serve_stream_concurrent


@pytest.fixture(scope="module")
def served_index():
    rng = np.random.default_rng(0)
    points = rng.normal(size=(500, 8))
    index = Index.build(
        points,
        IndexSpec(
            metric="l2", radius=1.2, num_tables=6, num_shards=2,
            cost_ratio=6.0, seed=3,
        ),
    )
    yield index
    index.close()


def _script(dim, count=30):
    rng = np.random.default_rng(7)
    lines = [
        json.dumps({"query": rng.normal(size=dim).tolist(), "radius": 1.2})
        for _ in range(count)
    ]
    lines.insert(5, json.dumps({"op": "stats"}))
    lines.insert(12, json.dumps({"query": rng.normal(size=dim).tolist(), "k": 4}))
    lines.insert(20, "this is not json")
    lines.insert(25, json.dumps({"query": [1.0], "radius": 1.0}))  # bad dim
    return lines


def _normalise(line):
    doc = json.loads(line)
    # Timing-dependent stats fields differ between runs by construction:
    # the loops group batches differently, so wall-clock counters, the
    # latency bucket distribution, per-stage seconds, and live gauges
    # all legitimately diverge.  Count-style fields stay compared.
    for volatile in ("elapsed_seconds", "qps", "batches", "latency", "stages", "gauges"):
        doc.pop(volatile, None)
    return doc


class TestConcurrentLoop:
    @pytest.mark.parametrize("window", [1, 2, 4])
    def test_matches_synchronous_loop_in_order(self, served_index, window):
        lines = _script(served_index.dim)
        served_index.reset_stats()
        sync = list(serve_stream(served_index, lines, batch_size=8))
        served_index.reset_stats()
        concurrent = list(
            serve_stream_concurrent(
                served_index, lines, batch_size=8, window=window
            )
        )
        assert len(sync) == len(concurrent) == len(lines)
        for a, b in zip(sync, concurrent):
            assert _normalise(a) == _normalise(b)

    def test_small_batch_size_exercises_many_inflight_batches(self, served_index):
        lines = _script(served_index.dim, count=50)
        served_index.reset_stats()
        sync = list(serve_stream(served_index, lines, batch_size=2))
        served_index.reset_stats()
        concurrent = list(
            serve_stream_concurrent(served_index, lines, batch_size=2, window=4)
        )
        for a, b in zip(sync, concurrent):
            assert _normalise(a) == _normalise(b)

    def test_stats_totals_match_sync_loop(self, served_index):
        """Overlapped batches must account identically to the sync loop.

        With ``batch_size=1`` both loops dispatch every query as its own
        batch, so the full counter set — queries served, batch count,
        histogram sample total, strategy tallies — is deterministic and
        must agree exactly (only the latency *distribution* is timing).
        """
        rng = np.random.default_rng(11)
        lines = [
            json.dumps({"query": rng.normal(size=served_index.dim).tolist(),
                        "radius": 1.2})
            for _ in range(40)
        ]

        def totals():
            stats = served_index.stats
            return {
                "queries_served": stats.queries_served,
                "batches": stats.batches,
                "histogram_total": stats.latency.count,
                "strategies": dict(stats.strategy_counts),
            }

        served_index.reset_stats()
        list(serve_stream(served_index, lines, batch_size=1))
        sync_totals = totals()
        served_index.reset_stats()
        list(serve_stream_concurrent(served_index, lines, batch_size=1, window=4))
        concurrent_totals = totals()

        assert sync_totals == concurrent_totals
        assert sync_totals["queries_served"] == len(lines)
        # Every query in a batch is charged the batch's latency, so the
        # histogram's sample total always equals queries_served.
        assert sync_totals["histogram_total"] == sync_totals["queries_served"]

    def test_stats_query_totals_match_under_grouping(self, served_index):
        """Larger micro-batches regroup work but never lose queries."""
        rng = np.random.default_rng(13)
        lines = [
            json.dumps({"query": rng.normal(size=served_index.dim).tolist(),
                        "radius": 1.2})
            for _ in range(30)
        ]
        served_index.reset_stats()
        list(serve_stream_concurrent(served_index, lines, batch_size=8, window=4))
        stats = served_index.stats
        assert stats.queries_served == len(lines)
        assert stats.latency.count == stats.queries_served
        assert sum(stats.strategy_counts.values()) == len(lines)

    def test_insert_op_is_a_barrier(self, served_index):
        rng = np.random.default_rng(9)
        new_point = rng.normal(size=served_index.dim)
        lines = [
            json.dumps({"query": new_point.tolist(), "radius": 0.5}),
            json.dumps({"op": "insert", "points": [new_point.tolist()]}),
            json.dumps({"query": new_point.tolist(), "radius": 0.5}),
        ]
        out = [
            json.loads(r)
            for r in serve_stream_concurrent(served_index, lines, window=4)
        ]
        assert out[1]["inserted"] == 1
        # The post-insert query must see the point the barrier added.
        assert out[2]["found"] == out[0]["found"] + 1

    def test_window_must_be_positive(self, served_index):
        with pytest.raises(ValueError):
            list(serve_stream_concurrent(served_index, [], window=0))

    def test_failing_backend_yields_per_line_errors_and_stream_survives(
        self, served_index
    ):
        """A batch whose backend blows up must not hang or misalign.

        Regression for the mid-batch worker-death hang: the future's
        exception is converted into one error line per buffered query,
        and later requests keep being served.
        """

        class FlakyService:
            """Duck-typed serving target whose query_batch always raises."""

            def __init__(self, real):
                self._real = real
                self.dim = real.dim
                self.calls = 0

            def query_batch(self, queries, radius=None, **kwargs):
                self.calls += 1
                raise RuntimeError("worker pool lost a shard mid-batch")

        flaky = FlakyService(served_index)
        rng = np.random.default_rng(17)
        lines = [
            json.dumps({"query": rng.normal(size=flaky.dim).tolist(),
                        "radius": 1.2})
            for _ in range(9)
        ]
        out = [
            json.loads(r)
            for r in serve_stream_concurrent(flaky, lines, batch_size=4, window=2)
        ]
        assert len(out) == len(lines)  # alignment preserved
        assert all("error" in doc for doc in out)
        assert all("mid-batch" in doc["error"] for doc in out)
        assert flaky.calls >= 1

    def test_escaping_future_exception_is_contained(self, served_index):
        """Even an exception _flush cannot catch owes its batch's lines.

        ``np.stack`` runs before ``_flush``'s per-group try, so a target
        whose ``dim`` attribute lies produces queries that fail there —
        the drain path must still emit one error per buffered query
        instead of killing the generator mid-stream.
        """

        class LyingDim:
            def __init__(self, real):
                self._real = real
                self.dim = real.dim

            def query_batch(self, queries, radius=None, **kwargs):
                return self._real.query_batch(queries, radius)

        target = LyingDim(served_index)
        good = json.dumps(
            {"query": np.zeros(target.dim).tolist(), "radius": 1.2}
        )
        out = list(serve_stream_concurrent(target, [good], window=2))
        assert len(out) == 1
        assert "found" in json.loads(out[0])

    def test_closing_the_generator_early_stops_the_reader(self, served_index):
        """Abandoning the response stream must not leak a blocked reader.

        The reader thread fills a bounded queue; if the consumer stops
        early the ``finally`` path has to unstick and join it rather
        than leave it pinned on a full queue forever.
        """
        rng = np.random.default_rng(19)
        lines = [
            json.dumps({"query": rng.normal(size=served_index.dim).tolist(),
                        "radius": 1.2})
            for _ in range(3000)  # far more than the inbox bound
        ]
        responses = serve_stream_concurrent(
            served_index, iter(lines), batch_size=8, window=2
        )
        assert "found" in json.loads(next(responses))
        responses.close()  # runs the finally: stop, drain, join

    def test_interactive_client_is_never_starved(self, served_index):
        """A client that sends one request and waits must get its answer.

        Regression: the loop used to drain completed futures only when
        the *next* input line arrived, deadlocking against a
        request/response client.
        """
        import queue
        import threading

        requests: queue.Queue[str | None] = queue.Queue()

        def lines():
            while True:
                item = requests.get()
                if item is None:
                    return
                yield item

        responses = serve_stream_concurrent(
            served_index, lines(), batch_size=8, window=2
        )
        rng = np.random.default_rng(3)
        received = []

        def consume_one():
            received.append(json.loads(next(responses)))

        for _ in range(3):  # strict request -> response lockstep
            requests.put(
                json.dumps(
                    {"query": rng.normal(size=served_index.dim).tolist(),
                     "radius": 1.2}
                )
            )
            consumer = threading.Thread(target=consume_one)
            consumer.start()
            consumer.join(timeout=10.0)
            assert not consumer.is_alive(), "interactive client starved"
        requests.put(None)
        assert len(list(responses)) == 0
        assert all("found" in r for r in received)
