"""Background re-freeze: the triggering insert must not pay compaction.

The frozen layout's automatic re-compaction used to run inline on the
insert that crossed ``refreeze_threshold``; it now runs double-buffered
in a worker thread.  These tests pin down the three contract points:

* the triggering insert returns without waiting for the compaction
  (asserted against an artificially slowed ``FrozenTables.assemble``);
* queries issued *while* the compaction is in flight are bit-identical
  to the dict layout (both overflow generations stay probed);
* explicit :meth:`FrozenLSHIndex.refreeze` remains synchronous.
"""

import time

import numpy as np

from repro.core import CostModel
from repro.core.hybrid import HybridSearcher
from repro.hashing import SimHashLSH
from repro.index import LSHIndex
from repro.index.frozen import FrozenTables


def _build_pair(n=400, dim=12, threshold=8):
    rng = np.random.default_rng(0)
    points = rng.normal(size=(n, dim))
    index = LSHIndex(SimHashLSH(dim, seed=1), k=4, num_tables=8, seed=2).build(points)
    frozen = LSHIndex(SimHashLSH(dim, seed=1), k=4, num_tables=8, seed=2).build(
        points
    ).freeze(refreeze_threshold=threshold)
    return points, index, frozen


def _slow_assemble(monkeypatch, delay):
    """Make every compaction pay ``delay`` seconds, deterministically."""
    original = FrozenTables.assemble.__func__

    def slowed(cls, *args, **kwargs):
        time.sleep(delay)
        return original(cls, *args, **kwargs)

    monkeypatch.setattr(FrozenTables, "assemble", classmethod(slowed))


class TestBackgroundRefreeze:
    def test_triggering_insert_does_not_pay_compaction_latency(self, monkeypatch):
        _, _, frozen = _build_pair(threshold=8)
        delay = 0.5
        _slow_assemble(monkeypatch, delay)
        rng = np.random.default_rng(3)
        started = time.perf_counter()
        frozen.insert(rng.normal(size=(9, 12)))
        insert_seconds = time.perf_counter() - started
        # The compaction alone takes >= delay; the insert must return in
        # a fraction of that (it only rotates the overflow generation).
        assert insert_seconds < delay / 2, insert_seconds
        assert frozen.overflow_count == 9  # still being folded
        frozen.wait_for_refreeze()
        assert frozen.overflow_count == 0

    def test_queries_during_compaction_are_bit_identical(self, monkeypatch):
        points, index, frozen = _build_pair(threshold=8)
        _slow_assemble(monkeypatch, 0.3)
        rng = np.random.default_rng(4)
        new = rng.normal(size=(9, 12))
        index.insert(new)
        frozen.insert(new)  # crosses the threshold -> background compaction
        assert frozen._refreeze_thread is not None
        cm = CostModel.from_ratio(6.0)
        a, b = HybridSearcher(index, cm), HybridSearcher(frozen, cm)
        queries = np.concatenate([rng.normal(size=(6, 12)), new[:3], points[:3]])
        # In flight: answers must include the compacting generation.
        for q in queries:
            ra, rb = a.query(q, 1.5), b.query(q, 1.5)
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)
        frozen.wait_for_refreeze()
        for q in queries:
            ra, rb = a.query(q, 1.5), b.query(q, 1.5)
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)

    def test_inserts_during_compaction_open_a_new_generation(self, monkeypatch):
        points, index, frozen = _build_pair(threshold=8)
        _slow_assemble(monkeypatch, 0.3)
        rng = np.random.default_rng(5)
        first, second = rng.normal(size=(9, 12)), rng.normal(size=(5, 12))
        index.insert(first), index.insert(second)
        frozen.insert(first)  # triggers the background fold of gen 0
        frozen.insert(second)  # lands in the fresh generation
        assert frozen.overflow_count == 14
        cm = CostModel.from_ratio(6.0)
        a, b = HybridSearcher(index, cm), HybridSearcher(frozen, cm)
        for q in np.concatenate([second[:3], first[:3], points[:3]]):
            ra, rb = a.query(q, 1.5), b.query(q, 1.5)
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)
        frozen.wait_for_refreeze()
        assert frozen.overflow_count == 5  # gen 1 still mutable
        frozen.refreeze()
        assert frozen.overflow_count == 0
        for q in np.concatenate([second[:3], first[:3]]):
            ra, rb = a.query(q, 1.5), b.query(q, 1.5)
            assert np.array_equal(ra.ids, rb.ids)

    def test_custom_estimator_sees_both_generations_mid_compaction(self, monkeypatch):
        """Estimators walking ``nonempty_buckets`` must see every live
        overflow generation, or the cost dispatch can silently flip."""
        from repro.sketches.registry import get_estimator

        points, index, frozen = _build_pair(threshold=8)
        _slow_assemble(monkeypatch, 0.3)
        rng = np.random.default_rng(8)
        first, second = rng.normal(size=(9, 12)), rng.normal(size=(4, 12))
        index.insert(first), index.insert(second)
        frozen.insert(first)  # triggers the slow background fold
        frozen.insert(second)  # lands in the fresh generation
        assert frozen._refreeze_thread is not None
        estimator = get_estimator("exact")
        cm = CostModel.from_ratio(6.0)
        a = HybridSearcher(index, cm, estimator=estimator)
        b = HybridSearcher(frozen, cm, estimator=estimator)
        for q in np.concatenate([second[:3], first[:3], points[:3]]):
            ra, rb = a.query(q, 1.5), b.query(q, 1.5)
            # The exact estimator counts distinct candidates; both
            # layouts must count the same set (both generations probed).
            assert ra.stats.estimated_candidates == rb.stats.estimated_candidates
            assert ra.stats.strategy == rb.stats.strategy
            assert np.array_equal(ra.ids, rb.ids)
        frozen.wait_for_refreeze()

    def test_failed_background_fold_is_retried_and_loses_nothing(self, monkeypatch):
        points, index, frozen = _build_pair(threshold=4)
        original = FrozenTables.assemble.__func__
        failures = {"left": 1}

        def flaky(cls, *args, **kwargs):
            if failures["left"]:
                failures["left"] -= 1
                raise MemoryError("simulated compaction failure")
            return original(cls, *args, **kwargs)

        monkeypatch.setattr(FrozenTables, "assemble", classmethod(flaky))
        rng = np.random.default_rng(7)
        first, second = rng.normal(size=(5, 12)), rng.normal(size=(5, 12))
        index.insert(first)
        frozen.insert(first)  # triggers the fold that fails
        frozen.wait_for_refreeze()
        assert isinstance(frozen.last_refreeze_error, MemoryError)
        assert frozen.overflow_count == 5  # stuck generation still probed
        cm = CostModel.from_ratio(6.0)
        a, b = HybridSearcher(index, cm), HybridSearcher(frozen, cm)
        for q in first[:3]:  # nothing lost while the fold is stuck
            assert np.array_equal(a.query(q, 1.5).ids, b.query(q, 1.5).ids)
        index.insert(second)
        frozen.insert(second)  # next trigger retries the stuck generation
        frozen.wait_for_refreeze()
        frozen.refreeze()  # folds whatever remains, synchronously
        assert frozen.last_refreeze_error is None
        assert frozen.overflow_count == 0
        for q in np.concatenate([first[:3], second[:3], points[:3]]):
            ra, rb = a.query(q, 1.5), b.query(q, 1.5)
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)

    def test_explicit_refreeze_is_synchronous(self):
        _, index, frozen = _build_pair(threshold=1024)
        rng = np.random.default_rng(6)
        new = rng.normal(size=(10, 12))
        index.insert(new)
        frozen.insert(new)
        assert frozen.overflow_count == 10
        frozen.refreeze()
        assert frozen.overflow_count == 0
        assert all(not t.buckets for t in frozen.tables)
        cm = CostModel.from_ratio(6.0)
        a, b = HybridSearcher(index, cm), HybridSearcher(frozen, cm)
        for q in new[:4]:
            ra, rb = a.query(q, 1.5), b.query(q, 1.5)
            assert np.array_equal(ra.ids, rb.ids)
