"""Tests for composite hashes and bucket-key encoding."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.hashing import SimHashLSH
from repro.hashing.composite import CompositeHash, encode_rows

RNG = np.random.default_rng(77)


class TestEncodeRows:
    def test_length(self):
        keys = encode_rows(RNG.integers(-5, 5, size=(10, 3)))
        assert len(keys) == 10

    def test_key_width(self):
        keys = encode_rows(np.zeros((2, 4), dtype=np.int64))
        assert all(len(k) == 32 for k in keys)

    def test_injective(self):
        rows = np.array([[0, 1], [1, 0], [0, 0], [1, 1], [2, 1]])
        keys = encode_rows(rows)
        assert len(set(keys)) == 5

    def test_equal_rows_equal_keys(self):
        rows = np.array([[3, -7, 2], [3, -7, 2]])
        keys = encode_rows(rows)
        assert keys[0] == keys[1]

    def test_negative_values_supported(self):
        keys = encode_rows(np.array([[-1], [1]]))
        assert keys[0] != keys[1]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            encode_rows(np.array([1, 2, 3]))

    def test_platform_independent_layout(self):
        key = encode_rows(np.array([[1]]))[0]
        assert key == (1).to_bytes(8, "little")


class TestCompositeHash:
    def test_hash_matrix_shape(self):
        g = SimHashLSH(dim=8, seed=0).sample(k=5)
        assert g.hash_matrix(RNG.normal(size=(7, 8))).shape == (7, 5)

    def test_hash_one_matches_matrix_row(self):
        g = SimHashLSH(dim=8, seed=0).sample(k=5)
        points = RNG.normal(size=(4, 8))
        matrix = g.hash_matrix(points)
        assert np.array_equal(g.hash_one(points[2]), matrix[2])

    def test_key_one_matches_keys(self):
        g = SimHashLSH(dim=8, seed=0).sample(k=5)
        points = RNG.normal(size=(4, 8))
        assert g.key_one(points[1]) == g.keys(points)[1]

    def test_dimension_mismatch(self):
        g = SimHashLSH(dim=8, seed=0).sample(k=3)
        with pytest.raises(DimensionMismatchError):
            g.hash_matrix(RNG.normal(size=(4, 9)))

    def test_vector_rejected_by_hash_matrix(self):
        g = SimHashLSH(dim=8, seed=0).sample(k=3)
        with pytest.raises(DimensionMismatchError):
            g.hash_matrix(RNG.normal(size=8))

    def test_bad_kernel_shape_detected(self):
        g = CompositeHash(lambda pts: np.zeros((pts.shape[0], 2), dtype=np.int64), k=3, dim=4)
        with pytest.raises(RuntimeError):
            g.hash_matrix(RNG.normal(size=(2, 4)))

    def test_repr(self):
        g = SimHashLSH(dim=8, seed=0).sample(k=3)
        assert "k=3" in repr(g)
