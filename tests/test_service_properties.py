"""Property-based tests for the serving subsystem (hypothesis optional).

The serving layer's contract is *exact agreement* with the single-query
reference paths, so these properties generate random data, queries, and
configurations and require bit-level equality:

* batched results == sequential single-query results;
* sharded exact top-k == unsharded exact top-k;
* HLL merging on the batch path is order-independent (commutative and
  associative register maxima), and identical to per-query merging.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis"
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CostModel, HybridLSH
from repro.distances.matrix import pairwise_distances
from repro.service import BatchQueryEngine, ShardedHybridIndex
from repro.sketches import HyperLogLog


@st.composite
def dataset_and_queries(draw):
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(40, 120))
    dim = draw(st.integers(3, 10))
    num_queries = draw(st.integers(1, 8))
    rng = np.random.default_rng(seed)
    # Half clustered, half scattered: both decision branches reachable.
    tight = rng.normal(scale=0.2, size=(n // 2, dim))
    loose = rng.uniform(-4.0, 4.0, size=(n - n // 2, dim))
    points = np.concatenate([tight, loose])
    queries = points[rng.choice(n, size=num_queries, replace=False)]
    return points, queries, seed


class TestBatchEqualsSequential:
    @given(
        dataset_and_queries(),
        st.floats(0.3, 3.0),
        st.floats(0.05, 50.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_engine_matches_query_loop(self, data, radius, ratio):
        points, queries, seed = data
        hybrid = HybridLSH(
            points,
            metric="l2",
            radius=radius,
            num_tables=5,
            cost_model=CostModel.from_ratio(ratio),
            seed=seed,
        )
        engine = BatchQueryEngine(hybrid.searcher, radius=radius)
        sequential = [hybrid.searcher.query(q, radius) for q in queries]
        for exp, act in zip(sequential, engine.query_batch(queries)):
            assert np.array_equal(exp.ids, act.ids)
            assert np.array_equal(exp.distances, act.distances)
            assert exp.stats.strategy == act.stats.strategy
            assert exp.stats.estimated_candidates == act.stats.estimated_candidates
            assert exp.stats.estimated_lsh_cost == act.stats.estimated_lsh_cost


class TestShardedTopK:
    @given(dataset_and_queries(), st.integers(1, 12), st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_sharded_topk_equals_unsharded(self, data, k, num_shards):
        """Sharded top-k equals unsharded top-k — exactly when the k-th
        gap is clear, and up to kernel ulps (the per-shard distance
        kernel can differ from the monolithic one by summation-order
        noise, ~1e-7 absolute near zero) when candidates are tied."""
        atol = 1e-5
        points, queries, seed = data
        sharded = ShardedHybridIndex(
            points,
            metric="l2",
            radius=1.0,
            num_shards=num_shards,
            num_tables=4,
            cost_model=CostModel.from_ratio(6.0),
            seed=seed,
        )
        for query in queries:
            result = sharded.query_topk(query, k=k)
            distances = pairwise_distances(query, points, "l2")[0]
            order = np.lexsort((np.arange(points.shape[0]), distances))[:k]
            kth = distances[order][-1]
            assert len(result.ids) == k
            # Every reported id lies within the true k-th distance band
            # and carries (up to kernel noise) its true distance.
            assert np.all(distances[result.ids] <= kth + atol)
            assert np.allclose(result.distances, distances[result.ids], atol=atol)
            assert np.all(np.diff(result.distances) >= -atol)
            tie_free = (
                k == points.shape[0]
                or distances[np.argsort(distances)[k]] - kth > 2 * atol
            )
            if tie_free and np.all(np.diff(distances[order]) > 2 * atol):
                assert np.array_equal(result.ids, order)


class TestHllMergeOnBatchPath:
    @given(dataset_and_queries())
    @settings(max_examples=10, deadline=None)
    def test_batch_merge_identical_to_single(self, data):
        points, queries, seed = data
        hybrid = HybridLSH(
            points,
            metric="l2",
            radius=1.0,
            num_tables=5,
            cost_model=CostModel.from_ratio(6.0),
            seed=seed,
        )
        index = hybrid.index
        lookups = index.lookup_batch(queries)
        for lookup, batched in zip(lookups, index.merged_sketches_batch(lookups)):
            single = index.merged_sketch(lookup)
            assert np.array_equal(single.registers, batched.registers)
            assert single.estimate() == batched.estimate()

    @given(
        st.lists(st.integers(0, 10**9), min_size=0, max_size=300),
        st.integers(2, 6),
        st.integers(0, 2**8),
    )
    @settings(max_examples=20, deadline=None)
    def test_merge_commutative_in_any_order(self, elements, pieces, seed):
        """Merging a partition's sketches in any order gives the same
        registers — the invariant merged_sketches_batch relies on."""
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, pieces, size=len(elements))
        sketches = []
        for piece in range(pieces):
            sketch = HyperLogLog(p=6, seed=1)
            chunk = [e for e, a in zip(elements, assignment) if a == piece]
            if chunk:
                sketch.add_batch(np.array(chunk, dtype=np.uint64))
            sketches.append(sketch)
        forward = HyperLogLog(p=6, seed=1)
        for sketch in sketches:
            forward.merge_in_place(sketch)
        backward = HyperLogLog(p=6, seed=1)
        for sketch in reversed(sketches):
            backward.merge_in_place(sketch)
        assert forward == backward
        assert forward.estimate() == backward.estimate()
