"""Execute the docstring examples of the public modules.

Keeps the documentation honest: every ``>>>`` example in the package
is run by the regular test suite (equivalent to
``pytest --doctest-modules src/repro`` but wired into ``pytest tests/``).
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_module_names() -> list[str]:
    names = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_module_names())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
