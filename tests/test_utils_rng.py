"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9, size=10)
        b = ensure_rng(2).integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(7, 2)
        a = children[0].integers(0, 10**9, size=20)
        b = children[1].integers(0, 10**9, size=20)
        assert not np.array_equal(a, b)

    def test_deterministic_from_seed(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(9, 3)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(9, 3)]
        assert a == b
