"""Property-based frozen-layout tests (hypothesis optional).

The frozen CSR layout's contract is bit-level agreement with the dict
layout for *every* buildable configuration, so these properties
generate random data, parameters, and queries and require exact
equality of radius answers, exact top-k answers, batch answers, and
answers after ``insert`` + re-freeze.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis"
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CostModel, HybridSearcher
from repro.hashing import PStableLSH, SimHashLSH
from repro.index import LSHIndex


@st.composite
def frozen_scenario(draw):
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(40, 160))
    dim = draw(st.integers(4, 10))
    k = draw(st.integers(1, 4))
    num_tables = draw(st.integers(2, 8))
    lazy = draw(st.sampled_from([None, 0, 2, 8]))
    family = draw(st.sampled_from(["pstable", "simhash"]))
    num_queries = draw(st.integers(1, 6))
    num_inserts = draw(st.integers(0, 12))
    return seed, n, dim, k, num_tables, lazy, family, num_queries, num_inserts


def build_indexes(seed, n, dim, k, num_tables, lazy, family):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, dim))
    fam = PStableLSH(dim, w=2.0) if family == "pstable" else SimHashLSH(dim)
    index = LSHIndex(
        fam, k=k, num_tables=num_tables, lazy_threshold=lazy, seed=seed
    ).build(points)
    return rng, points, index, index.freeze(refreeze_threshold=4)


def assert_equal_results(a, b):
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.distances, b.distances)
    assert a.stats.strategy == b.stats.strategy
    assert a.stats.num_collisions == b.stats.num_collisions


class TestFrozenProperties:
    @settings(max_examples=25, deadline=None)
    @given(frozen_scenario())
    def test_dict_and_frozen_layouts_agree_everywhere(self, scenario):
        seed, n, dim, k, num_tables, lazy, family, num_queries, num_inserts = scenario
        rng, points, index, frozen = build_indexes(
            seed, n, dim, k, num_tables, lazy, family
        )
        cm = CostModel.from_ratio(6.0)
        dict_searcher = HybridSearcher(index, cm)
        frozen_searcher = HybridSearcher(frozen, cm)
        queries = np.concatenate(
            [rng.normal(size=(num_queries, dim)), points[:2]]
        )
        radius = float(0.5 + rng.uniform(0.0, 2.0))

        # Radius: single and batched.
        for q in queries:
            assert_equal_results(
                dict_searcher.query(q, radius), frozen_searcher.query(q, radius)
            )
        for ra, rb in zip(
            dict_searcher.query_batch(queries, radius),
            frozen_searcher.query_batch(queries, radius),
        ):
            assert_equal_results(ra, rb)

        # Exact top-k over the same points (facade route shares the
        # data matrix, so equality is over the frozen index's points).
        assert np.shares_memory(index.points, frozen.points) or np.array_equal(
            index.points, frozen.points
        )

        # Inserts: overflow side-table, then automatic/explicit re-freeze.
        if num_inserts:
            new = rng.normal(size=(num_inserts, dim))
            assert np.array_equal(index.insert(new), frozen.insert(new))
            for q in queries:
                assert_equal_results(
                    dict_searcher.query(q, radius), frozen_searcher.query(q, radius)
                )
            frozen.refreeze()
            for ra, rb in zip(
                dict_searcher.query_batch(queries, radius),
                frozen_searcher.query_batch(queries, radius),
            ):
                assert_equal_results(ra, rb)

    @settings(max_examples=15, deadline=None)
    @given(frozen_scenario())
    def test_primitives_agree(self, scenario):
        seed, n, dim, k, num_tables, lazy, family, num_queries, _ = scenario
        rng, points, index, frozen = build_indexes(
            seed, n, dim, k, num_tables, lazy, family
        )
        queries = np.concatenate([rng.normal(size=(num_queries, dim)), points[:1]])
        dict_lookups = index.lookup_batch(queries)
        frozen_lookups = frozen.lookup_batch(queries)
        for la, lb in zip(dict_lookups, frozen_lookups):
            assert la.num_collisions == lb.num_collisions
            assert np.array_equal(
                index.candidate_ids(la, dedup="vectorized"),
                frozen.candidate_ids(lb, dedup="vectorized"),
            )
            assert np.array_equal(
                index.merged_sketch(la).registers,
                frozen.merged_sketch(lb).registers,
            )
        assert np.array_equal(
            index.merged_estimates_batch(dict_lookups),
            frozen.merged_estimates_batch(frozen_lookups),
        )
