"""reprolint end-to-end: fixtures trip rules, suppression works, src/ is clean.

Each file under ``tests/analysis_fixtures/`` holds a deliberate
violation of exactly one rule.  Per rule the tests assert three things:
the fixture produces findings, every finding carries that rule's id,
and disabling the rule silences the fixture entirely — so each test
fails if its rule is unregistered or gutted.  The final class pins the
zero-false-positive contract over the real source tree: ``check src/``
must stay green, which is what lets CI treat any finding as a failure.
"""

from pathlib import Path

import pytest

from repro.analysis.core import Finding, all_rules, run_check
from repro.analysis.rules.dtypes import DTYPE_CONTRACTS

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
SRC = Path(__file__).resolve().parent.parent / "src"

#: rule id -> the fixture path that must trip it (a directory for the
#: project-level rule, a single file for the rest).
RULE_FIXTURES = {
    "unseeded-rng": FIXTURES / "determinism_bad.py",
    "set-iteration": FIXTURES / "set_iteration_bad.py",
    "dtype-contract": FIXTURES / "index" / "dtypes_bad.py",
    "lock-discipline": FIXTURES / "locks_bad.py",
    "trace-stage": FIXTURES / "stages_bad.py",
    "spec-plumb": FIXTURES / "spec_plumb",
    "deadline-required": FIXTURES / "service",
}


class TestRegistry:
    def test_every_rule_has_a_fixture_and_vice_versa(self):
        assert set(all_rules()) == set(RULE_FIXTURES)

    def test_at_least_six_rules_registered(self):
        assert len(all_rules()) >= 6

    def test_unknown_rule_ids_are_rejected(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            run_check([str(FIXTURES)], enabled=["no-such-rule"])
        with pytest.raises(ValueError, match="no-such-rule"):
            run_check([str(FIXTURES)], disabled=["no-such-rule"])


class TestTruePositives:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_fixture_trips_its_rule(self, rule_id):
        findings = run_check([str(RULE_FIXTURES[rule_id])], enabled=[rule_id])
        assert findings, f"fixture for {rule_id!r} produced no findings"
        assert all(f.rule == rule_id for f in findings)
        assert all(isinstance(f, Finding) and f.line > 0 for f in findings)

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_disabling_the_rule_silences_the_fixture(self, rule_id):
        """The true-positive evaporates when its rule is switched off.

        This is the guarantee that each fixture test above fails when
        the rule it covers is disabled or deleted, rather than passing
        vacuously off some other rule's findings.
        """
        findings = run_check([str(RULE_FIXTURES[rule_id])], disabled=[rule_id])
        assert not [f for f in findings if f.rule == rule_id]

    def test_unseeded_rng_reports_both_draw_styles(self):
        findings = run_check(
            [str(RULE_FIXTURES["unseeded-rng"])], enabled=["unseeded-rng"]
        )
        blob = " ".join(f.message for f in findings)
        assert "np.random" in blob  # the legacy global-state draw
        assert "default_rng" in blob  # the unseeded Generator

    def test_dtype_contract_reports_alloc_cast_and_rematerialise(self):
        findings = run_check(
            [str(RULE_FIXTURES["dtype-contract"])], enabled=["dtype-contract"]
        )
        assert len(findings) == 3  # np.zeros, .astype, np.asarray sites
        assert DTYPE_CONTRACTS["offsets"] == "int64"  # table is the oracle
        assert any("offsets" in f.message for f in findings)
        assert any("re-materialising" in f.message for f in findings)

    def test_spec_plumb_names_the_dead_fields_only(self):
        findings = run_check([str(RULE_FIXTURES["spec-plumb"])], enabled=["spec-plumb"])
        # metric/radius (IndexSpec) and k/adaptive (QuerySpec) are
        # consumed; only the two dead knobs report, each against its
        # own consumer set.
        assert len(findings) == 2
        blob = " ".join(f.message for f in findings)
        assert "IndexSpec.dead_knob" in blob
        assert "QuerySpec.dead_request_knob" in blob
        assert all(f.path.endswith("api/spec.py") for f in findings)

    def test_deadline_required_reports_both_shapes(self):
        findings = run_check(
            [str(RULE_FIXTURES["deadline-required"])], enabled=["deadline-required"]
        )
        # Pipe fixture: unguarded recv, poll(None), and the recv behind
        # poll(None).  Socket fixture: unguarded recv, unguarded accept,
        # unguarded connect, settimeout(None).  The guarded functions in
        # both fixtures report nothing.
        assert len(findings) == 7
        blob = " ".join(f.message for f in findings)
        assert "poll(None)" in blob
        assert "no bounded" in blob
        assert "settimeout(None)" in blob
        assert ".accept()" in blob
        assert ".connect()" in blob

    def test_lock_discipline_points_at_the_bare_mutation(self):
        findings = run_check(
            [str(RULE_FIXTURES["lock-discipline"])], enabled=["lock-discipline"]
        )
        assert len(findings) == 1
        assert "_items" in findings[0].message
        assert "add()" in findings[0].message  # the guarded sibling is named


class TestSuppression:
    def test_inline_disable_comment_drops_the_finding(self):
        noisy = run_check(
            [str(FIXTURES / "determinism_bad.py")], enabled=["unseeded-rng"]
        )
        assert noisy  # the identical un-suppressed draw does report
        quiet = run_check(
            [str(FIXTURES / "suppressed_ok.py")], enabled=["unseeded-rng"]
        )
        assert quiet == []

    def test_suppression_is_per_rule(self, tmp_path):
        """A disable comment for one rule does not silence another."""
        source = (FIXTURES / "suppressed_ok.py").read_text().replace(
            "disable=unseeded-rng", "disable=set-iteration"
        )
        path = tmp_path / "wrong_rule.py"
        path.write_text(source)
        findings = run_check([str(path)], enabled=["unseeded-rng"])
        assert [f.rule for f in findings] == ["unseeded-rng"]


class TestCli:
    def test_check_exits_nonzero_and_prints_findings(self, capsys):
        from repro.analysis.__main__ import main

        rc = main(["check", str(RULE_FIXTURES["lock-discipline"])])
        out = capsys.readouterr()
        assert rc == 1
        assert "[lock-discipline]" in out.out
        assert "finding(s)" in out.err

    def test_check_exits_zero_on_clean_input(self, capsys):
        from repro.analysis.__main__ import main

        rc = main(["check", str(FIXTURES / "suppressed_ok.py")])
        assert rc == 0
        assert capsys.readouterr().out == ""

    def test_list_rules_prints_all_ids(self, capsys):
        from repro.analysis.__main__ import main

        rc = main(["list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in RULE_FIXTURES:
            assert rule_id in out


class TestRealSourceTree:
    def test_src_is_finding_free(self):
        """The zero-false-positive contract CI relies on.

        Every rule runs over the real source tree and must report
        nothing — genuine violations were fixed (not suppressed) when
        the rules were introduced, and any regression lands here first.
        """
        assert run_check([str(SRC)]) == []
