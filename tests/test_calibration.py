"""Tests for the alpha/beta calibration (paper Section 4.2)."""

import numpy as np
import pytest

from repro.core.calibration import calibrate_cost_model, measure_alpha, measure_beta
from repro.exceptions import ConfigurationError

RNG = np.random.default_rng(31)


class TestMeasureBeta:
    def test_positive(self):
        beta = measure_beta(RNG.normal(size=(500, 16)), RNG.normal(size=(5, 16)), "l2")
        assert beta > 0

    def test_scales_with_dimension(self):
        """Distance cost grows with d (the sparsity/metric dependence)."""
        small = measure_beta(RNG.normal(size=(2000, 4)), RNG.normal(size=(5, 4)), "l2")
        large = measure_beta(RNG.normal(size=(2000, 512)), RNG.normal(size=(5, 512)), "l2")
        assert large > small


class TestMeasureAlpha:
    def test_positive(self):
        assert measure_alpha(n=10_000, num_collisions=5_000, seed=0) > 0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            measure_alpha(n=0, num_collisions=10)
        with pytest.raises(ConfigurationError):
            measure_alpha(n=10, num_collisions=0)


class TestCalibrate:
    def test_report_fields(self):
        points = RNG.normal(size=(2_000, 16))
        report = calibrate_cost_model(points, "l2", num_queries=10, num_points=500, seed=0)
        assert report.model.alpha == report.alpha_seconds
        assert report.model.beta == report.beta_seconds
        assert report.num_queries == 10
        assert report.num_points == 500
        assert report.beta_over_alpha > 0

    def test_sample_sizes_clipped(self):
        points = RNG.normal(size=(50, 8))
        report = calibrate_cost_model(points, "l2", num_queries=100, num_points=10_000, seed=0)
        assert report.num_queries == 50
        assert report.num_points == 50

    def test_deterministic_sampling(self):
        """Same seed draws the same samples (timings differ, samples don't)."""
        points = RNG.normal(size=(300, 8))
        a = calibrate_cost_model(points, "l2", num_queries=5, num_points=100, seed=7)
        b = calibrate_cost_model(points, "l2", num_queries=5, num_points=100, seed=7)
        # Ratios are timing-noisy but must be the same order of magnitude.
        ratio = a.beta_over_alpha / b.beta_over_alpha
        assert 0.1 < ratio < 10.0
