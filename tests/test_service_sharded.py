"""Tests for the sharded hybrid index (repro.service.sharded)."""

import numpy as np
import pytest

from repro.core import CostModel, LinearScan, Strategy
from repro.distances.matrix import pairwise_distances
from repro.exceptions import ConfigurationError
from repro.service import ShardedHybridIndex


@pytest.fixture
def sharded(gaussian_points) -> ShardedHybridIndex:
    return ShardedHybridIndex(
        gaussian_points,
        metric="l2",
        radius=1.0,
        num_shards=3,
        num_tables=6,
        cost_model=CostModel.from_ratio(6.0),
        seed=2,
    )


def exact_topk(points, query, k):
    distances = pairwise_distances(query, points, "l2")[0]
    order = np.lexsort((np.arange(points.shape[0]), distances))[:k]
    return order, distances[order]


class TestConstruction:
    def test_partition_is_balanced_and_disjoint(self, sharded, gaussian_points):
        sizes = sharded.shard_sizes()
        assert sum(sizes) == gaussian_points.shape[0]
        assert max(sizes) - min(sizes) <= 1
        assert np.array_equal(sharded.gather_points(), gaussian_points)

    def test_too_many_shards_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            ShardedHybridIndex(
                rng.normal(size=(4, 3)),
                metric="l2",
                radius=1.0,
                num_shards=5,
                cost_model=CostModel.from_ratio(1.0),
            )


class TestRadiusSemantics:
    def test_merge_is_union_of_shard_answers(self, sharded, gaussian_points):
        """The merged result must be exactly the per-shard answers under
        the global id map — the shards partition the data, so the union
        is disjoint."""
        for i in (0, 57, 301, 599):
            query = gaussian_points[i]
            merged = sharded.query(query, radius=1.5)
            expected = {}
            for gids, shard in zip(sharded._shard_gids, sharded.shards):
                local = shard.searcher.query(query, 1.5)
                for local_id, dist in zip(local.ids, local.distances):
                    expected[int(gids[local_id])] = dist
            assert merged.ids.tolist() == sorted(expected)
            assert np.array_equal(
                merged.distances, np.array([expected[i] for i in sorted(expected)])
            )

    def test_linear_shards_cover_their_partition_exactly(self, gaussian_points):
        """A shard that dispatches to linear search reports *every* of
        its points in range; with collisions in the query's own shard,
        alpha -> inf forces that shard linear and the self-neighborhood
        is complete."""
        sharded = ShardedHybridIndex(
            gaussian_points,
            metric="l2",
            radius=1.0,
            num_shards=4,
            num_tables=4,
            cost_model=CostModel(alpha=1e12, beta=1.0),
            seed=0,
        )
        scan = LinearScan(gaussian_points, "l2")
        for i in (0, 57, 301, 599):
            merged = sharded.query(gaussian_points[i], radius=1.5)
            exact = scan.query(gaussian_points[i], radius=1.5)
            # No false positives ever, and nothing missed in any shard
            # that went linear (zero-collision shards legitimately pick
            # LSH under Algorithm 2 — their cost estimate is zero).
            assert set(merged.ids) <= set(exact.ids)
            own_shard = i % sharded.num_shards
            own_gids = sharded._shard_gids[own_shard]
            exact_in_own = np.intersect1d(exact.ids, own_gids)
            assert set(exact_in_own) <= set(merged.ids)

    def test_hybrid_mode_answers_are_valid(self, sharded, gaussian_points):
        for i in (3, 140, 502):
            result = sharded.query(gaussian_points[i])
            assert i in result.ids
            assert np.all(np.diff(result.ids) > 0)  # global ids, strictly sorted
            true_dists = np.linalg.norm(
                gaussian_points[result.ids] - gaussian_points[i], axis=1
            )
            # atol reflects the batch kernel's cancellation noise near
            # zero distance (see test_properties tolerances).
            assert np.allclose(true_dists, result.distances, atol=1e-5)
            assert np.all(result.distances <= 1.0 + 1e-9)

    def test_batch_matches_single_loop(self, sharded, gaussian_points):
        queries = gaussian_points[::41]
        batched = sharded.query_batch(queries)
        for query, result in zip(queries, batched):
            single = sharded.query(query)
            assert np.array_equal(single.ids, result.ids)
            assert np.array_equal(single.distances, result.distances)

    def test_merged_stats_aggregate_shards(self, sharded, gaussian_points):
        result = sharded.query(gaussian_points[0])
        assert result.stats.strategy == Strategy.HYBRID
        beta = sharded.cost_model.beta
        assert result.stats.linear_cost == pytest.approx(beta * sharded.n)


class TestTopK:
    def test_matches_unsharded_exact_topk(self, sharded, gaussian_points):
        for i, k in ((0, 1), (99, 7), (580, 25)):
            result = sharded.query_topk(gaussian_points[i], k=k)
            ids, dists = exact_topk(gaussian_points, gaussian_points[i], k)
            assert np.array_equal(result.ids, ids)
            # Per-shard kernels may differ from the monolithic one by
            # summation-order ulps (amplified near zero by cancellation).
            assert np.allclose(result.distances, dists, atol=1e-5)
            assert result.radius == result.distances[-1]

    def test_batch_topk(self, sharded, gaussian_points):
        queries = gaussian_points[:5]
        results = sharded.query_topk_batch(queries, k=4)
        for query, result in zip(queries, results):
            ids, dists = exact_topk(gaussian_points, query, 4)
            assert np.array_equal(result.ids, ids)

    def test_k_bounds(self, sharded, gaussian_points):
        with pytest.raises(ConfigurationError):
            sharded.query_topk(gaussian_points[0], k=0)
        with pytest.raises(ConfigurationError):
            sharded.query_topk(gaussian_points[0], k=sharded.n + 1)


class TestInsert:
    def test_global_ids_and_balance(self, sharded, gaussian_points, rng):
        n0 = sharded.n
        new_points = rng.normal(size=(7, gaussian_points.shape[1]))
        ids = sharded.insert(new_points)
        assert ids.tolist() == list(range(n0, n0 + 7))
        assert sharded.n == n0 + 7
        sizes = sharded.shard_sizes()
        assert max(sizes) - min(sizes) <= 1  # round-robin keeps balance

    def test_insert_then_query_sees_new_points(self, sharded, gaussian_points):
        """Regression: the stale-points hazard on the sharded path."""
        new_points = gaussian_points[:3] + 1e-4
        ids = sharded.insert(new_points)
        for new_id, query in zip(ids, new_points):
            result = sharded.query(query)
            assert new_id in result.ids

    def test_insert_then_topk_is_exact(self, sharded, gaussian_points, rng):
        new_points = rng.normal(size=(5, gaussian_points.shape[1]))
        ids = sharded.insert(new_points)
        everything = sharded.gather_points()
        for new_id, query in zip(ids, new_points):
            result = sharded.query_topk(query, k=3)
            exact_ids, _ = exact_topk(everything, query, 3)
            assert result.ids[0] == new_id
            assert np.array_equal(result.ids, exact_ids)

    def test_empty_insert(self, sharded, gaussian_points):
        assert sharded.insert(np.empty((0, gaussian_points.shape[1]))).size == 0
