"""End-to-end tests of the experiment specs (tiny scale)."""

import numpy as np
import pytest

from repro.core import CostModel
from repro.datasets import corel_like, webspam_like
from repro.evaluation import (
    figure2_experiment,
    figure3_experiment,
    format_figure2,
    format_figure3,
    table1_experiment,
)
from repro.evaluation.report import format_table, format_table1


@pytest.fixture(scope="module")
def tiny_webspam():
    return webspam_like(n=1200, seed=0)


@pytest.fixture(scope="module")
def tiny_corel():
    return corel_like(n=1200, seed=0)


class TestTable1:
    def test_row_fields(self, tiny_corel):
        row = table1_experiment(tiny_corel, num_queries=20, num_tables=10, seed=0)
        assert row.dataset == "corel-like"
        assert row.num_queries == 20
        assert row.radius == tiny_corel.radii[0]
        assert 0.0 <= row.cost_percent <= 100.0
        assert row.error_percent >= 0.0

    def test_hll_error_small(self, tiny_webspam):
        """The candSize estimate should be within ~2x the HLL error bound."""
        row = table1_experiment(tiny_webspam, num_queries=25, num_tables=10, seed=0)
        assert row.error_percent < 25.0  # 1.04/sqrt(128) ~ 9.2% expected

    def test_custom_radius(self, tiny_corel):
        row = table1_experiment(tiny_corel, num_queries=10, radius=0.5, num_tables=5, seed=0)
        assert row.radius == 0.5


class TestFigure2:
    def test_rows(self, tiny_corel):
        rows = figure2_experiment(
            tiny_corel,
            radii=(0.4, 0.6),
            num_queries=15,
            repeats=1,
            num_tables=8,
            seed=0,
        )
        assert len(rows) == 2
        for row in rows:
            assert row.hybrid_seconds > 0
            assert row.lsh_seconds > 0
            assert row.linear_seconds > 0
            assert row.linear_recall == 1.0
            assert 0.0 <= row.hybrid_recall <= 1.0
            assert row.winner in ("hybrid", "lsh", "linear")

    def test_hybrid_never_much_worse_than_best(self, tiny_webspam):
        """The paper's claim: hybrid ~ min(LSH, linear) per radius."""
        rows = figure2_experiment(
            tiny_webspam,
            radii=(0.05, 0.1),
            num_queries=20,
            repeats=2,
            num_tables=10,
            cost_model=CostModel.from_ratio(10.0),
            seed=0,
        )
        for row in rows:
            best = min(row.lsh_seconds, row.linear_seconds)
            assert row.hybrid_seconds < 3.5 * best

    def test_without_recall(self, tiny_corel):
        rows = figure2_experiment(
            tiny_corel, radii=(0.4,), num_queries=5, repeats=1, num_tables=4,
            seed=0, with_recall=False,
        )
        assert np.isnan(rows[0].hybrid_recall)


class TestFigure3:
    def test_rows(self, tiny_webspam):
        rows = figure3_experiment(
            tiny_webspam, radii=(0.05, 0.1), num_queries=25, num_tables=8, seed=0
        )
        assert len(rows) == 2
        for row in rows:
            assert row.min_output <= row.avg_output <= row.max_output
            assert 0.0 <= row.linear_call_percent <= 100.0
            assert row.n == tiny_webspam.n - 25

    def test_output_spread_on_webspam(self, tiny_webspam):
        """Hard queries (> n/4) and easy queries (tiny) coexist."""
        rows = figure3_experiment(
            tiny_webspam, radii=(0.1,), num_queries=40, num_tables=8, seed=0
        )
        row = rows[0]
        assert row.max_output > row.n / 4
        assert row.min_output < row.n / 50

    def test_linear_calls_monotonic_tendency(self, tiny_webspam):
        """%LS calls should not decrease as the radius grows (paper Fig 3)."""
        rows = figure3_experiment(
            tiny_webspam,
            radii=(0.05, 0.1),
            num_queries=30,
            num_tables=8,
            cost_model=CostModel.from_ratio(10.0),
            seed=0,
        )
        assert rows[1].linear_call_percent >= rows[0].linear_call_percent - 5.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["33", "44"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table1(self, tiny_corel):
        row = table1_experiment(tiny_corel, num_queries=5, num_tables=4, seed=0)
        text = format_table1([row])
        assert "corel-like" in text
        assert "% Cost" in text

    def test_format_figure2(self, tiny_corel):
        rows = figure2_experiment(
            tiny_corel, radii=(0.4,), num_queries=5, repeats=1, num_tables=4, seed=0
        )
        text = format_figure2(rows, title="Corel")
        assert "Corel" in text
        assert "Hybrid (s)" in text

    def test_format_figure3(self, tiny_webspam):
        rows = figure3_experiment(
            tiny_webspam, radii=(0.05,), num_queries=5, num_tables=4, seed=0
        )
        text = format_figure3(rows)
        assert "%LS calls" in text
