"""Persistence tests for the Index facade (save / open).

The acceptance bar: ``Index.open(path)`` on a saved 4-shard index must
return bit-identical radius, top-k, and batch answers to the pre-save
index on a fixed query set.
"""

import json
import os

import numpy as np
import pytest

from repro.api import Index, IndexSpec, QuerySpec
from repro.exceptions import ConfigurationError

hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis"
)
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


def _build(points, **overrides):
    base = dict(metric="l2", radius=1.0, num_tables=6, cost_ratio=6.0, seed=1)
    base.update(overrides)
    return Index.build(points, IndexSpec(**base))


def _assert_identical_answers(a: Index, b: Index, queries: np.ndarray) -> None:
    for x, y in zip(a.query(QuerySpec(queries)), b.query(QuerySpec(queries))):
        assert np.array_equal(x.ids, y.ids)
        assert np.array_equal(x.distances, y.distances)
        assert x.stats.strategy == y.stats.strategy
    for qi in range(0, queries.shape[0], 7):
        x = a.query(QuerySpec(queries[qi]))
        y = b.query(QuerySpec(queries[qi]))
        assert np.array_equal(x.ids, y.ids)
        assert np.array_equal(x.distances, y.distances)
        x = a.query(QuerySpec(queries[qi], k=9))
        y = b.query(QuerySpec(queries[qi], k=9))
        assert np.array_equal(x.ids, y.ids)
        assert np.array_equal(x.distances, y.distances)


class TestShardedRoundTrip:
    def test_four_shard_round_trip_is_bit_identical(self, gaussian_points, tmp_path):
        """The ISSUE acceptance criterion, verbatim."""
        index = _build(gaussian_points, num_shards=4)
        path = str(tmp_path / "sharded")
        index.save(path)
        reopened = Index.open(path)
        assert reopened.num_shards == 4
        assert reopened.n == index.n
        assert reopened.spec == index.spec
        _assert_identical_answers(index, reopened, gaussian_points[:40])

    def test_round_trip_after_inserts_preserves_id_maps(self, gaussian_points, tmp_path):
        index = _build(gaussian_points, num_shards=3)
        inserted = index.insert(gaussian_points[:5] + 1e-5)
        path = str(tmp_path / "with-inserts")
        index.save(path)
        reopened = Index.open(path)
        assert reopened.n == index.n
        _assert_identical_answers(index, reopened, gaussian_points[:20])
        # Insert routing state survives: the next inserts land on the
        # same shards in both instances.
        a = index.insert(gaussian_points[5:9] + 1e-5)
        b = reopened.insert(gaussian_points[5:9] + 1e-5)
        assert np.array_equal(a, b)
        assert index.engine.shard_sizes() == reopened.engine.shard_sizes()
        assert inserted[0] in reopened.query(QuerySpec(gaussian_points[0])).ids

    def test_cost_model_restored_not_recalibrated(self, gaussian_points, tmp_path):
        """A timing-calibrated model must reload from its saved constants."""
        index = _build(gaussian_points, num_shards=2, cost_ratio=None)
        path = str(tmp_path / "calibrated")
        index.save(path)
        reopened = Index.open(path)
        assert reopened.cost_model.alpha == index.cost_model.alpha
        assert reopened.cost_model.beta == index.cost_model.beta
        _assert_identical_answers(index, reopened, gaussian_points[:10])


class TestSingleRoundTrip:
    def test_single_index_round_trip(self, gaussian_points, tmp_path):
        index = _build(gaussian_points, cache_size=32)
        path = str(tmp_path / "single")
        index.save(path)
        reopened = Index.open(path)
        assert reopened.num_shards == 1
        assert reopened.cache is not None and reopened.cache.maxsize == 32
        _assert_identical_answers(index, reopened, gaussian_points[:25])

    def test_meta_file_is_json_with_spec(self, gaussian_points, tmp_path):
        index = _build(gaussian_points)
        path = str(tmp_path / "meta")
        index.save(path)
        with open(os.path.join(path, "index.json")) as fh:
            meta = json.load(fh)
        assert IndexSpec.from_dict(meta["spec"]) == index.spec
        assert meta["cost_model"]["beta"] == pytest.approx(6.0)


class TestErrors:
    def test_open_missing_path_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Index.open(str(tmp_path / "nothing-here"))

    def test_legacy_wrapped_index_cannot_save(self, gaussian_points, tmp_path):
        from repro.core import CostModel
        from repro.service import BatchQueryEngine

        engine = BatchQueryEngine.from_points(
            gaussian_points, metric="l2", radius=1.0, num_tables=6,
            cost_model=CostModel.from_ratio(6.0), seed=1,
        )
        wrapped = Index.from_engine(engine)
        with pytest.raises(ConfigurationError):
            wrapped.save(str(tmp_path / "nope"))


@settings(max_examples=5, deadline=None)
@given(
    num_shards=st.integers(1, 5),
    metric=st.sampled_from(["l2", "l1"]),
    data_seed=st.integers(0, 2**10),
)
def test_round_trip_property(num_shards, metric, data_seed, tmp_path_factory):
    """Any (metric, K, data) combination saved and reopened answers
    bit-identically on a fixed query set."""
    rng = np.random.default_rng(data_seed)
    points = rng.normal(size=(180, 8))
    index = Index.build(
        points,
        IndexSpec(
            metric=metric, radius=1.2, num_tables=4, cost_ratio=6.0,
            num_shards=num_shards, seed=3,
        ),
    )
    path = str(tmp_path_factory.mktemp("roundtrip") / "ix")
    index.save(path)
    reopened = Index.open(path)
    queries = points[:8]
    for x, y in zip(index.query(QuerySpec(queries)), reopened.query(QuerySpec(queries))):
        assert np.array_equal(x.ids, y.ids)
        assert np.array_equal(x.distances, y.distances)
