"""Public-API surface checks: exports, exception hierarchy, versioning."""

import numpy as np
import pytest

import repro
from repro.exceptions import (
    ConfigurationError,
    DimensionMismatchError,
    EmptyIndexError,
    ReproError,
    SketchError,
    UnknownMetricError,
)


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_subpackage_alls_resolve(self):
        import repro.core
        import repro.datasets
        import repro.distances
        import repro.evaluation
        import repro.hashing
        import repro.index
        import repro.observability
        import repro.sketches

        for module in (
            repro.core,
            repro.datasets,
            repro.distances,
            repro.evaluation,
            repro.hashing,
            repro.index,
            repro.observability,
            repro.sketches,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (module.__name__, name)

    def test_readme_quickstart_runs(self):
        """The README's quickstart snippet must stay executable."""
        rng = np.random.default_rng(0)
        points = rng.normal(size=(500, 16))
        index = repro.Index.build(
            points,
            repro.IndexSpec(metric="l2", radius=2.0, num_tables=6, seed=42),
        )
        result = index.query(repro.QuerySpec(points[0]))
        assert 0 in result.ids
        assert result.stats.strategy in (repro.Strategy.LSH, repro.Strategy.LINEAR)

    def test_api_subpackage_all_resolves(self):
        import repro.api

        for name in repro.api.__all__:
            assert getattr(repro.api, name, None) is not None, name


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            DimensionMismatchError,
            EmptyIndexError,
            UnknownMetricError,
            SketchError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_is_value_error(self):
        """Callers using plain `except ValueError` still catch config bugs."""
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(DimensionMismatchError, ValueError)

    def test_unknown_metric_is_key_error(self):
        assert issubclass(UnknownMetricError, KeyError)

    def test_empty_index_is_runtime_error(self):
        assert issubclass(EmptyIndexError, RuntimeError)

    def test_single_catch_all(self):
        with pytest.raises(ReproError):
            repro.get_metric("not-a-metric")
        with pytest.raises(ReproError):
            repro.CostModel(alpha=-1.0, beta=1.0)
