"""Tests for the metric registry."""

import numpy as np
import pytest

from repro.distances import Metric, available_metrics, get_metric, register_metric
from repro.exceptions import UnknownMetricError


class TestRegistry:
    def test_all_paper_metrics_registered(self):
        names = available_metrics()
        for expected in ("l2", "l1", "cosine", "hamming", "jaccard"):
            assert expected in names

    @pytest.mark.parametrize(
        "alias,canonical",
        [("euclidean", "l2"), ("manhattan", "l1"), ("cityblock", "l1"), ("angular", "cosine")],
    )
    def test_aliases(self, alias, canonical):
        assert get_metric(alias).name == canonical

    def test_case_insensitive(self):
        assert get_metric("L2").name == "l2"

    def test_unknown_raises(self):
        with pytest.raises(UnknownMetricError):
            get_metric("chebyshev")

    def test_metric_passthrough(self):
        metric = get_metric("l2")
        assert get_metric(metric) is metric

    def test_metric_is_callable(self):
        metric = get_metric("l2")
        assert metric(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_register_custom_metric(self):
        def chebyshev(x, y):
            return float(np.abs(np.asarray(x) - np.asarray(y)).max())

        def chebyshev_batch(points, q):
            return np.abs(np.asarray(points) - np.asarray(q)).max(axis=1)

        custom = register_metric(
            Metric(name="_test_linf", scalar=chebyshev, batch=chebyshev_batch)
        )
        assert get_metric("_test_linf") is custom
        assert custom(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 4.0

    def test_distances_to(self):
        metric = get_metric("l1")
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = metric.distances_to(points, np.array([0.0, 0.0]))
        assert out.tolist() == [0.0, 2.0]
