"""Tests for the paper parameter presets."""

import pytest

from repro.core.presets import paper_parameters
from repro.exceptions import ConfigurationError, UnknownMetricError
from repro.hashing import BitSamplingLSH, PStableLSH, SimHashLSH
from repro.hashing.params import concatenation_width


class TestPStablePresets:
    def test_l1_pins_k8_w4r(self):
        params = paper_parameters("l1", dim=54, radius=3000.0)
        assert params.k == 8
        assert isinstance(params.family, PStableLSH)
        assert params.family.p == 1
        assert params.family.w == pytest.approx(4 * 3000.0)

    def test_l2_pins_k7_w2r(self):
        params = paper_parameters("l2", dim=32, radius=0.5)
        assert params.k == 7
        assert params.family.p == 2
        assert params.family.w == pytest.approx(2 * 0.5)

    def test_guarantee_for_typical_neighbors(self):
        """The pinned (k, w) pairs comfortably exceed 1 - delta for points
        at half the radius (where the bulk of true neighbors live; the
        boundary-distance guarantee of the pinned values is weaker, which
        the paper accepts in exchange for selectivity)."""
        from repro.hashing.params import success_probability

        for metric, radius in (("l1", 3000.0), ("l2", 0.5)):
            params = paper_parameters(metric, dim=32, radius=radius)
            p_half = params.family.collision_probability(radius / 2)
            assert success_probability(params.k, 50, p_half) >= 0.9


class TestDerivedPresets:
    def test_hamming_uses_rule(self):
        params = paper_parameters("hamming", dim=64, radius=12.0)
        p1 = 1 - 12 / 64
        assert isinstance(params.family, BitSamplingLSH)
        assert params.k == concatenation_width(50, 0.1, p1)
        assert params.p1 == pytest.approx(p1)

    def test_cosine_uses_rule(self):
        params = paper_parameters("cosine", dim=254, radius=0.05)
        assert isinstance(params.family, SimHashLSH)
        assert params.k == concatenation_width(50, 0.1, params.p1)

    def test_jaccard_supported(self):
        params = paper_parameters("jaccard", dim=100, radius=0.2)
        assert params.p1 == pytest.approx(0.8)

    def test_custom_L_and_delta(self):
        params = paper_parameters("cosine", dim=16, radius=0.1, num_tables=20, delta=0.05)
        assert params.num_tables == 20
        assert params.delta == 0.05

    def test_unknown_metric(self):
        with pytest.raises((UnknownMetricError, KeyError)):
            paper_parameters("nope", dim=8, radius=1.0)

    def test_invalid_radius(self):
        with pytest.raises(ConfigurationError):
            paper_parameters("l2", dim=8, radius=0.0)

    def test_seed_reproducibility(self):
        import numpy as np

        points = np.random.default_rng(0).normal(size=(5, 16))
        a = paper_parameters("cosine", dim=16, radius=0.1, seed=4).family.sample(3)
        b = paper_parameters("cosine", dim=16, radius=0.1, seed=4).family.sample(3)
        assert (a.hash_matrix(points) == b.hash_matrix(points)).all()
