"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.utils.validation import (
    check_delta,
    check_matrix,
    check_positive,
    check_positive_int,
    check_probability,
    check_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_accepts_int(self):
        assert check_positive(3, "x") == 3.0

    @pytest.mark.parametrize("bad", [0, -1.0, float("nan"), float("inf"), "a", None, True])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive(bad, "x")


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(2, "x") == 2

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(5), "x") == 5

    @pytest.mark.parametrize("bad", [0, -3, 1.5, "a", None, True])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive_int(bad, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1, "a", True])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability(bad, "p")


class TestCheckDelta:
    def test_accepts_interior(self):
        assert check_delta(0.1) == 0.1

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 2.0])
    def test_rejects_boundaries(self, bad):
        with pytest.raises(ConfigurationError):
            check_delta(bad)


class TestCheckVector:
    def test_accepts_1d(self):
        v = check_vector(np.ones(4))
        assert v.shape == (4,)

    def test_enforces_dim(self):
        with pytest.raises(DimensionMismatchError):
            check_vector(np.ones(4), dim=5)

    def test_rejects_matrix(self):
        with pytest.raises(DimensionMismatchError):
            check_vector(np.ones((2, 2)))


class TestCheckMatrix:
    def test_accepts_2d(self):
        m = check_matrix(np.ones((3, 4)))
        assert m.shape == (3, 4)

    def test_enforces_columns(self):
        with pytest.raises(DimensionMismatchError):
            check_matrix(np.ones((3, 4)), dim=5)

    def test_rejects_vector(self):
        with pytest.raises(DimensionMismatchError):
            check_matrix(np.ones(4))
