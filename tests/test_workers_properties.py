"""Property-based determinism of the process pool (hypothesis optional).

``execution="processes"`` must be *indistinguishable* from
``execution="threads"`` at the answer level: same spec + same seed →
byte-identical ids and distances for every radius, top-k, batch and
insert request.  Exact top-k is additionally compared against the
unsharded frozen index — the selection is exact in every mode, so all
three must agree bit for bit.

The pool is expensive to start, so one thread/process pair is built per
module and hypothesis only draws the *requests* (query subsets, radii,
k); the insert property rebuilds its own pair to keep state isolated.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis"
)
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Index, IndexSpec, QuerySpec

N, DIM, SHARDS = 500, 10, 3


def _spec(**overrides):
    base = dict(
        metric="l2",
        radius=1.1,
        num_tables=6,
        num_shards=SHARDS,
        layout="frozen",
        cost_ratio=6.0,
        seed=13,
    )
    base.update(overrides)
    return IndexSpec(**base)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(21)
    tight = rng.normal(scale=0.25, size=(N // 2, DIM))
    loose = rng.uniform(-4.0, 4.0, size=(N - N // 2, DIM))
    points = np.concatenate([tight, loose])
    probes = np.concatenate([points[:40], rng.normal(size=(40, DIM))])
    return points, probes


@pytest.fixture(scope="module")
def serving_pair(corpus):
    points, _ = corpus
    threads = Index.build(points, _spec())
    processes = Index.build(points, _spec(execution="processes"), num_workers=2)
    unsharded = Index.build(points, _spec(num_shards=1, execution="threads"))
    yield threads, processes, unsharded
    threads.close(), processes.close(), unsharded.close()


def assert_results_equal(a, b):
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.distances, b.distances)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    rows=st.lists(st.integers(0, 79), min_size=1, max_size=6, unique=True),
    radius=st.sampled_from([0.6, 1.1, 1.7]),
)
def test_radius_processes_equal_threads(serving_pair, corpus, rows, radius):
    threads, processes, _ = serving_pair
    _, probes = corpus
    batch = probes[rows]
    for ra, rb in zip(
        threads.query_batch(batch, radius), processes.query_batch(batch, radius)
    ):
        assert_results_equal(ra, rb)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    rows=st.lists(st.integers(0, 79), min_size=1, max_size=5, unique=True),
    k=st.integers(1, 12),
)
def test_topk_agrees_across_all_three_modes(serving_pair, corpus, rows, k):
    threads, processes, unsharded = serving_pair
    _, probes = corpus
    batch = probes[rows]
    expected = threads.query(QuerySpec(batch, k=k))
    for reference, challenger in (
        (expected, processes.query(QuerySpec(batch, k=k))),
        (expected, unsharded.query(QuerySpec(batch, k=k))),
    ):
        for ra, rb in zip(reference, challenger):
            assert_results_equal(ra, rb)


@settings(max_examples=5, deadline=None)
@given(
    insert_seed=st.integers(0, 2**16),
    batch_sizes=st.lists(st.integers(1, 6), min_size=1, max_size=3),
)
def test_insert_sequences_stay_bit_identical(corpus, insert_seed, batch_sizes):
    points, probes = corpus
    threads = Index.build(points, _spec())
    processes = Index.build(points, _spec(execution="processes"), num_workers=2)
    rng = np.random.default_rng(insert_seed)
    try:
        for size in batch_sizes:
            batch = rng.normal(size=(size, DIM))
            assert np.array_equal(threads.insert(batch), processes.insert(batch))
            checks = np.concatenate([batch, probes[:4]])
            for ra, rb in zip(
                threads.query_batch(checks), processes.query_batch(checks)
            ):
                assert_results_equal(ra, rb)
            for ra, rb in zip(
                threads.query(QuerySpec(checks, k=3)),
                processes.query(QuerySpec(checks, k=3)),
            ):
                assert_results_equal(ra, rb)
    finally:
        threads.close(), processes.close()
