"""Tests for the fused all-tables hashing (BatchedHash)."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.hashing import BitSamplingLSH, MinHashLSH, PStableLSH, SimHashLSH
from repro.hashing.batched import BatchedHash

RNG = np.random.default_rng(55)


def real_points(n=40, d=12):
    return RNG.normal(size=(n, d))


def binary_points(n=40, d=12):
    return RNG.integers(0, 2, size=(n, d)).astype(np.uint8)


class TestShapes:
    @pytest.mark.parametrize(
        "family,points",
        [
            (PStableLSH(12, w=2.0, p=2, seed=1), real_points()),
            (PStableLSH(12, w=2.0, p=1, seed=1), real_points()),
            (SimHashLSH(12, seed=1), real_points()),
            (BitSamplingLSH(12, seed=1), binary_points()),
            (MinHashLSH(12, seed=1), binary_points()),
        ],
        ids=["l2", "l1", "simhash", "bits", "minhash"],
    )
    def test_hash_points_shape(self, family, points):
        batched = family.sample_batch(k=3, num_tables=5)
        out = batched.hash_points(points)
        assert out.shape == (points.shape[0], 5, 3)
        assert out.dtype == np.int64

    def test_query_rows_shape(self):
        batched = SimHashLSH(12, seed=1).sample_batch(k=4, num_tables=7)
        rows = batched.query_rows(RNG.normal(size=12))
        assert rows.shape == (7, 4)

    def test_dimension_validation(self):
        batched = SimHashLSH(12, seed=1).sample_batch(k=4, num_tables=7)
        with pytest.raises(DimensionMismatchError):
            batched.query_rows(np.zeros(13))
        with pytest.raises(DimensionMismatchError):
            batched.hash_points(np.zeros((3, 13)))


class TestConsistency:
    @pytest.mark.parametrize(
        "family,points",
        [
            (PStableLSH(12, w=2.0, p=2, seed=1), real_points()),
            (SimHashLSH(12, seed=1), real_points()),
            (BitSamplingLSH(12, seed=1), binary_points()),
            (MinHashLSH(12, seed=1), binary_points()),
        ],
        ids=["l2", "simhash", "bits", "minhash"],
    )
    def test_query_rows_match_hash_points(self, family, points):
        """A vector hashed alone must land exactly where it lands in batch."""
        batched = family.sample_batch(k=3, num_tables=5)
        all_hashes = batched.hash_points(points)
        for i in (0, 7, 39):
            rows = batched.query_rows(points[i])
            assert np.array_equal(rows, all_hashes[i])

    def test_chunked_hashing_matches_unchunked(self, monkeypatch):
        """Chunk boundaries must not change any hash value."""
        import repro.hashing.batched as mod

        family = PStableLSH(8, w=1.5, p=2, seed=3)
        points = RNG.normal(size=(100, 8))
        batched = family.sample_batch(k=2, num_tables=3)
        full = batched.hash_points(points)
        monkeypatch.setattr(mod, "_CHUNK_ROWS", 7)
        chunked = batched.hash_points(points)
        assert np.array_equal(full, chunked)

    def test_generic_fallback(self):
        """The base-class fallback (used by custom families) works too."""
        from repro.hashing.base import LSHFamily
        from repro.hashing.composite import CompositeHash

        class TrivialFamily(LSHFamily):
            metric_name = "l2"

            def sample(self, k):
                coords = self._rng.integers(0, self.dim, size=k)

                def kernel(pts):
                    return np.floor(pts[:, coords]).astype(np.int64)

                return CompositeHash(kernel, k=k, dim=self.dim)

            def collision_probability(self, distance):
                return max(0.0, 1.0 - distance)

        batched = TrivialFamily(6, seed=0).sample_batch(k=2, num_tables=4)
        points = RNG.normal(size=(10, 6))
        out = batched.hash_points(points)
        assert out.shape == (10, 4, 2)
        assert batched.kind == "generic"
        assert batched.params is None


class TestParams:
    @pytest.mark.parametrize(
        "family,kind,param_names",
        [
            (PStableLSH(8, w=2.0, p=2, seed=1), "pstable", {"projections", "offsets"}),
            (SimHashLSH(8, seed=1), "simhash", {"planes"}),
            (BitSamplingLSH(8, seed=1), "bit_sampling", {"coords"}),
            (MinHashLSH(8, seed=1), "minhash", {"priorities"}),
        ],
        ids=["pstable", "simhash", "bits", "minhash"],
    )
    def test_params_exposed(self, family, kind, param_names):
        batched = family.sample_batch(k=2, num_tables=3)
        assert batched.kind == kind
        assert set(batched.params) == param_names

    def test_repr(self):
        batched = SimHashLSH(8, seed=1).sample_batch(k=2, num_tables=3)
        assert "BatchedHash" in repr(batched)
