"""Tests for the query-result cache and the serving facade."""

import json

import numpy as np
import pytest

from repro.core import CostModel
from repro.core.results import QueryResult
from repro.exceptions import ConfigurationError
from repro.service import (
    BatchQueryEngine,
    QueryResultCache,
    QueryService,
    serve_stream,
)


def _dummy_result(ids=(1, 2)) -> QueryResult:
    ids = np.asarray(ids, dtype=np.int64)
    return QueryResult(ids=ids, distances=np.zeros(ids.size), radius=1.0)


class TestLruSemantics:
    def test_hit_miss_and_counters(self):
        cache = QueryResultCache(maxsize=4)
        key = cache.make_key(np.array([1.0, 2.0]), radius=0.5)
        assert cache.get(key) is None
        cache.put(key, _dummy_result())
        assert cache.get(key).ids.tolist() == [1, 2]
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_eviction_order_is_lru(self):
        cache = QueryResultCache(maxsize=2)
        keys = [cache.make_key(np.array([float(i)]), radius=1.0) for i in range(3)]
        cache.put(keys[0], _dummy_result())
        cache.put(keys[1], _dummy_result())
        assert cache.get(keys[0]) is not None  # refresh 0; 1 becomes LRU
        cache.put(keys[2], _dummy_result())
        assert len(cache) == 2
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None

    def test_clear(self):
        cache = QueryResultCache(maxsize=2)
        key = cache.make_key(np.array([0.0]), radius=1.0)
        cache.put(key, _dummy_result())
        cache.get(key)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            QueryResultCache(maxsize=0)
        with pytest.raises(ConfigurationError):
            QueryResultCache(quantum=-1.0)


class TestKeying:
    def test_radius_is_part_of_the_key(self):
        cache = QueryResultCache()
        q = np.array([1.0, 2.0])
        assert cache.make_key(q, 0.5) != cache.make_key(q, 0.6)

    def test_quantisation_buckets_nearby_queries(self):
        cache = QueryResultCache(quantum=0.1)
        a = cache.make_key(np.array([1.00, 2.00]), 0.5)
        b = cache.make_key(np.array([1.04, 1.96]), 0.5)
        c = cache.make_key(np.array([1.30, 2.00]), 0.5)
        assert a == b
        assert a != c

    def test_zero_quantum_keys_exact_bytes(self):
        cache = QueryResultCache(quantum=0.0)
        a = cache.make_key(np.array([1.0]), 0.5)
        b = cache.make_key(np.array([1.0 + 1e-12]), 0.5)
        assert a != b

    def test_huge_coordinates_do_not_collide(self):
        """Regression: values past int64 range after quantisation must
        not saturate onto one key."""
        cache = QueryResultCache(quantum=1e-9)
        a = cache.make_key(np.array([1e10, 0.0]), 1.0)
        b = cache.make_key(np.array([2e10, 0.0]), 1.0)
        assert a != b
        nan_key = cache.make_key(np.array([np.nan, 0.0]), 1.0)
        assert nan_key not in (a, b)

    def test_negative_zero_canonicalised(self):
        cache = QueryResultCache(quantum=1e-6)
        assert cache.make_key(np.array([0.0]), 1.0) == cache.make_key(
            np.array([-0.0]), 1.0
        )


@pytest.fixture
def service(gaussian_points) -> QueryService:
    engine = BatchQueryEngine.from_points(
        gaussian_points,
        metric="l2",
        radius=1.0,
        num_tables=6,
        cost_model=CostModel.from_ratio(6.0),
        seed=1,
    )
    return QueryService(engine, cache=QueryResultCache(maxsize=64))


class TestQueryService:
    def test_repeat_query_hits_cache(self, service, gaussian_points):
        first = service.query(gaussian_points[0])
        second = service.query(gaussian_points[0])
        assert np.array_equal(first.ids, second.ids)
        assert service.stats.cache_hits == 1
        assert service.stats.cache_misses == 1
        assert service.stats.queries_served == 2

    def test_duplicates_within_one_batch_collapse(self, service, gaussian_points):
        batch = np.stack([gaussian_points[0], gaussian_points[1], gaussian_points[0]])
        results = service.query_batch(batch)
        assert np.array_equal(results[0].ids, results[2].ids)
        assert service.stats.cache_misses == 2  # only two engine queries
        # The duplicate is engine work avoided, but not a cache hit —
        # it was answered by its batch-mate's fresh result.
        assert service.stats.deduplicated == 1
        assert service.stats.cache_hits == 0

    def test_cached_results_match_uncached(self, gaussian_points, service):
        bare = QueryService(service.engine, cache=None)
        queries = gaussian_points[::50]
        service.query_batch(queries)  # warm the cache
        cached = service.query_batch(queries)  # all hits
        uncached = bare.query_batch(queries)
        for c, u in zip(cached, uncached):
            assert np.array_equal(c.ids, u.ids)
            assert np.array_equal(c.distances, u.distances)

    def test_insert_invalidates_cache(self, service, gaussian_points):
        """Regression: stale cached answers after an insert."""
        query = gaussian_points[0]
        before = service.query(query)
        ids = service.insert(query[None, :] + 1e-5)
        after = service.query(query)
        assert ids[0] in after.ids
        assert ids[0] not in before.ids
        assert after.output_size == before.output_size + 1

    def test_strategy_counts_accumulate(self, service, gaussian_points):
        service.query_batch(gaussian_points[:10])
        assert sum(service.stats.strategy_counts.values()) == 10

    def test_stats_snapshot_roundtrips_json(self, service, gaussian_points):
        service.query(gaussian_points[0])
        payload = json.dumps(service.stats.as_dict())
        assert json.loads(payload)["queries_served"] == 1

    def test_stats_attribute_stays_assignable(self, service, gaussian_points):
        """Legacy callers reset counters by assignment, not reset_stats()."""
        from repro.service import ServiceStats

        service.query(gaussian_points[0])
        service.stats = ServiceStats()
        assert service.stats.queries_served == 0
        service.query(gaussian_points[1])
        assert service.stats.queries_served == 1


class TestServeStream:
    def test_query_insert_stats_roundtrip(self, service, gaussian_points):
        lines = [
            json.dumps({"query": gaussian_points[0].tolist()}),
            json.dumps({"query": gaussian_points[0].tolist(), "radius": 0.5}),
            json.dumps({"op": "insert", "points": [(gaussian_points[1] + 1e-5).tolist()]}),
            json.dumps({"query": gaussian_points[1].tolist()}),
            json.dumps({"op": "stats"}),
        ]
        out = [json.loads(line) for line in serve_stream(service, lines, batch_size=8)]
        assert out[0]["found"] >= 1 and 0 in out[0]["ids"]
        assert out[1]["strategy"] in ("lsh", "linear")
        assert out[2]["inserted"] == 1
        assert out[2]["ids"][0] in out[3]["ids"]  # insert visible to later query
        assert out[4]["queries_served"] == 3

    def test_malformed_lines_do_not_poison_the_batch(self, service, gaussian_points):
        lines = [
            json.dumps({"query": gaussian_points[0].tolist()}),
            "not json at all",
            json.dumps({"query": [1.0, 2.0]}),  # wrong dimension
            json.dumps({"query": gaussian_points[2].tolist(), "radius": -3}),
            json.dumps({"op": "warp"}),
            json.dumps({"query": gaussian_points[3].tolist()}),
        ]
        out = [json.loads(line) for line in serve_stream(service, lines, batch_size=2)]
        assert len(out) == 6
        assert "error" in out[1] and "error" in out[2]
        assert "error" in out[3] and "error" in out[4]
        assert out[0]["found"] >= 1 and out[5]["found"] >= 1

    def test_missing_radius_yields_error_lines_not_a_dead_stream(self, gaussian_points):
        """Regression: an engine-level failure (no default radius) must
        produce per-line errors, not kill the generator mid-stream."""
        engine = BatchQueryEngine.from_points(
            gaussian_points,
            metric="l2",
            radius=1.0,
            num_tables=6,
            cost_model=CostModel.from_ratio(6.0),
            seed=1,
        )
        engine.radius = None  # serving without a default radius
        bare = QueryService(engine)
        lines = [
            json.dumps({"query": gaussian_points[0].tolist()}),  # no radius
            json.dumps({"query": gaussian_points[1].tolist(), "radius": 1.0}),
            json.dumps({"op": "stats"}),
        ]
        out = [json.loads(line) for line in serve_stream(bare, lines, batch_size=8)]
        assert len(out) == 3
        assert "error" in out[0] and "radius" in out[0]["error"]
        assert 1 in out[1]["ids"]
        assert out[2]["queries_served"] == 1

    def test_micro_batching_preserves_order(self, service, gaussian_points):
        queries = gaussian_points[:7]
        lines = [json.dumps({"query": q.tolist()}) for q in queries]
        out = [
            json.loads(line)
            for line in serve_stream(
                service, lines, batch_size=3, more_ready=lambda: True
            )
        ]
        for i, response in enumerate(out):
            assert i in response["ids"]  # each query finds itself

    def test_idle_client_gets_an_immediate_response(self, service, gaussian_points):
        """Regression: with no backlog the stream must answer each query
        as it arrives, never holding it hostage for batch_size peers."""
        consumed = []

        def tracking_lines():
            for i in (0, 1):
                consumed.append(i)
                yield json.dumps({"query": gaussian_points[i].tolist()})

        stream = serve_stream(service, tracking_lines(), batch_size=64)
        first = json.loads(next(stream))
        assert consumed == [0]  # responded without waiting for more input
        assert 0 in first["ids"]
        assert 1 in json.loads(next(stream))["ids"]
