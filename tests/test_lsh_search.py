"""Tests for classic LSH-based rNNR search."""

import numpy as np

from repro.core import LinearScan, LSHSearch, Strategy
from repro.core.presets import paper_parameters
from repro.evaluation.metrics import mean_recall
from repro.index import LSHIndex


class TestLSHSearch:
    def test_reports_only_true_neighbors(self, l2_index, gaussian_points):
        """No false positives: every reported point is within r (verified)."""
        searcher = LSHSearch(l2_index)
        q = gaussian_points[0]
        result = searcher.query(q, radius=1.5)
        dists = np.linalg.norm(gaussian_points[result.ids] - q, axis=1)
        assert np.all(dists <= 1.5)

    def test_subset_of_ground_truth(self, l2_index, gaussian_points):
        searcher = LSHSearch(l2_index)
        scan = LinearScan(gaussian_points, "l2")
        q = gaussian_points[5]
        lsh_ids = set(searcher.query(q, 1.5).ids.tolist())
        true_ids = set(scan.query(q, 1.5).ids.tolist())
        assert lsh_ids <= true_ids

    def test_self_is_found(self, l2_index, gaussian_points):
        searcher = LSHSearch(l2_index)
        result = searcher.query(gaussian_points[9], radius=0.5)
        assert 9 in result.ids

    def test_stats_filled(self, l2_index, gaussian_points):
        result = LSHSearch(l2_index).query(gaussian_points[0], 1.0)
        assert result.stats.strategy == Strategy.LSH
        assert result.stats.num_collisions > 0
        assert result.stats.exact_candidates >= result.output_size

    def test_empty_candidates(self, l2_index):
        """A far-away query may hit no buckets and report nothing."""
        far = np.full(16, 1e6)
        result = LSHSearch(l2_index).query(far, radius=1.0)
        assert result.output_size == 0

    def test_distances_sorted_by_id(self, l2_index, gaussian_points):
        q = gaussian_points[2]
        result = LSHSearch(l2_index).query(q, 2.0)
        assert np.all(np.diff(result.ids) > 0)

    def test_recall_matches_analytic_expectation(self, gaussian_points):
        """Measured recall tracks the analytic per-neighbor expectation.

        Each true neighbor at distance c is found with probability
        1 - (1 - p(c)^k)^L; averaging that over the actual neighbor
        distances predicts the measured recall.
        """
        from repro.hashing.params import expected_recall

        radius, delta, L = 1.2, 0.1, 30
        params = paper_parameters("l2", dim=16, radius=radius, num_tables=L, delta=delta, seed=5)
        index = LSHIndex(params.family, k=params.k, num_tables=L).build(gaussian_points)
        searcher = LSHSearch(index)
        scan = LinearScan(gaussian_points, "l2")
        queries = gaussian_points[:40]
        reported = [searcher.query(q, radius).ids for q in queries]
        truth_results = [scan.query(q, radius) for q in queries]
        truth = [r.ids for r in truth_results]
        measured = mean_recall(reported, truth)

        all_dists = np.concatenate([r.distances for r in truth_results])
        probs = params.family.collision_probability_batch(all_dists)
        analytic = expected_recall(probs, k=params.k, num_tables=L)
        assert abs(measured - analytic) < 0.12
        assert measured > 0.6
