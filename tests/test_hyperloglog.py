"""Tests for the HyperLogLog sketch."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches import HyperLogLog, PrecomputedHllHashes
from repro.sketches.hyperloglog import alpha_m


class TestAlphaM:
    def test_known_constants(self):
        assert alpha_m(16) == 0.673
        assert alpha_m(32) == 0.697
        assert alpha_m(64) == 0.709

    def test_asymptotic_formula(self):
        assert alpha_m(128) == pytest.approx(0.7213 / (1 + 1.079 / 128))

    def test_monotone_beyond_64(self):
        assert alpha_m(128) < alpha_m(1 << 14)


class TestConstruction:
    def test_register_count(self):
        assert HyperLogLog(p=7).m == 128

    def test_starts_empty(self):
        assert HyperLogLog(p=5).is_empty()

    @pytest.mark.parametrize("bad_p", [0, 1, 19, -3, 2.5, "a"])
    def test_invalid_precision(self, bad_p):
        with pytest.raises(ConfigurationError):
            HyperLogLog(p=bad_p)

    def test_relative_standard_error(self):
        assert HyperLogLog(p=7).relative_standard_error == pytest.approx(1.04 / math.sqrt(128))


class TestEstimation:
    @pytest.mark.parametrize("true_count", [10, 100, 1000, 50_000])
    def test_accuracy_within_4_sigma(self, true_count):
        sketch = HyperLogLog(p=7, seed=11)
        sketch.add_batch(np.arange(true_count))
        err = abs(sketch.estimate() - true_count) / true_count
        assert err < 4 * sketch.relative_standard_error

    def test_empty_estimates_zero(self):
        assert HyperLogLog(p=7).estimate() == 0.0

    def test_exactish_for_tiny_counts(self):
        """Small-range linear counting keeps tiny cardinalities accurate."""
        sketch = HyperLogLog(p=7, seed=0)
        sketch.add_batch(np.arange(5))
        assert abs(sketch.estimate() - 5) <= 1.0

    def test_duplicates_do_not_inflate(self):
        sketch = HyperLogLog(p=7, seed=1)
        sketch.add_batch(np.tile(np.arange(200), 50))
        err = abs(sketch.estimate() - 200) / 200
        assert err < 4 * sketch.relative_standard_error

    def test_add_scalar_matches_batch(self):
        a = HyperLogLog(p=6, seed=2)
        b = HyperLogLog(p=6, seed=2)
        for i in range(300):
            a.add(i)
        b.add_batch(np.arange(300))
        assert a == b

    def test_higher_precision_is_more_accurate_on_average(self):
        true_count = 20_000
        errors = {}
        for p in (4, 10):
            errs = []
            for seed in range(5):
                sketch = HyperLogLog(p=p, seed=seed)
                sketch.add_batch(np.arange(true_count))
                errs.append(abs(sketch.estimate() - true_count) / true_count)
            errors[p] = np.mean(errs)
        assert errors[10] < errors[4]


class TestMerge:
    def test_merge_equals_union_sketch(self):
        """Merging sketches of two sets gives the sketch of their union."""
        a = HyperLogLog(p=7, seed=3)
        b = HyperLogLog(p=7, seed=3)
        union = HyperLogLog(p=7, seed=3)
        a.add_batch(np.arange(0, 600))
        b.add_batch(np.arange(400, 1000))
        union.add_batch(np.arange(0, 1000))
        assert a.merge(b) == union

    def test_merge_in_place_returns_self(self):
        a = HyperLogLog(p=5, seed=0)
        b = HyperLogLog(p=5, seed=0)
        assert a.merge_in_place(b) is a

    def test_merge_is_idempotent(self):
        a = HyperLogLog(p=6, seed=1)
        a.add_batch(np.arange(100))
        merged = a.merge(a)
        assert merged == a

    def test_merge_is_commutative(self):
        a = HyperLogLog(p=6, seed=1)
        b = HyperLogLog(p=6, seed=1)
        a.add_batch(np.arange(50))
        b.add_batch(np.arange(30, 90))
        assert a.merge(b) == b.merge(a)

    def test_incompatible_precision_raises(self):
        with pytest.raises(SketchError):
            HyperLogLog(p=6).merge(HyperLogLog(p=7))

    def test_incompatible_seed_raises(self):
        with pytest.raises(SketchError):
            HyperLogLog(p=6, seed=0).merge(HyperLogLog(p=6, seed=1))

    def test_merge_wrong_type_raises(self):
        with pytest.raises(SketchError):
            HyperLogLog(p=6).merge_in_place(object())

    def test_merge_many(self):
        parts = []
        for start in range(0, 1000, 100):
            s = HyperLogLog(p=7, seed=4)
            s.add_batch(np.arange(start, start + 100))
            parts.append(s)
        merged = HyperLogLog.merge_many(parts)
        err = abs(merged.estimate() - 1000) / 1000
        assert err < 4 * merged.relative_standard_error

    def test_merge_many_empty_list_raises(self):
        with pytest.raises(SketchError):
            HyperLogLog.merge_many([])

    def test_copy_is_independent(self):
        a = HyperLogLog(p=6, seed=0)
        a.add_batch(np.arange(100))
        b = a.copy()
        b.add_batch(np.arange(100, 200))
        assert a != b


class TestPrecomputed:
    def test_matches_direct_insertion(self):
        n = 500
        hashes = PrecomputedHllHashes(n, p=7, seed=9)
        via_pairs = HyperLogLog(p=7, seed=9)
        for i in range(n):
            via_pairs.add_precomputed(*hashes.pair(i))
        direct = HyperLogLog(p=7, seed=9)
        direct.add_batch(np.arange(n))
        assert via_pairs == direct

    def test_batch_matches_scalar_path(self):
        n = 300
        hashes = PrecomputedHllHashes(n, p=6, seed=2)
        a = HyperLogLog(p=6, seed=2)
        a.add_precomputed_batch(hashes.registers, hashes.ranks)
        b = HyperLogLog(p=6, seed=2)
        for i in range(n):
            b.add_precomputed(*hashes.pair(i))
        assert a == b

    def test_len(self):
        assert len(PrecomputedHllHashes(42, p=5)) == 42

    def test_negative_n_raises(self):
        with pytest.raises(ConfigurationError):
            PrecomputedHllHashes(-1, p=5)


class TestMemory:
    def test_memory_bytes_equals_m(self):
        assert HyperLogLog(p=7).memory_bytes == 128

    def test_repr(self):
        assert "HyperLogLog" in repr(HyperLogLog(p=5))
