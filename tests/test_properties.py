"""Property-based tests (hypothesis) on the core invariants."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import CostModel, Strategy
from repro.distances import (
    cosine_distance,
    euclidean_distance,
    hamming_distance,
    jaccard_distance,
    manhattan_distance,
)
from repro.hashing import concatenation_width, success_probability
from repro.hashing.composite import encode_rows
from repro.sketches import HyperLogLog

finite_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 20),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


def vector_pairs(draw):
    dim = draw(st.integers(1, 16))
    elems = st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False)
    x = draw(hnp.arrays(np.float64, dim, elements=elems))
    y = draw(hnp.arrays(np.float64, dim, elements=elems))
    return x, y


pair_strategy = st.composite(vector_pairs)()


class TestMetricAxioms:
    @given(pair_strategy)
    def test_euclidean_symmetry(self, pair):
        x, y = pair
        assert euclidean_distance(x, y) == pytest.approx(euclidean_distance(y, x))

    @given(pair_strategy)
    def test_euclidean_nonnegative_and_identity(self, pair):
        x, _ = pair
        assert euclidean_distance(x, x) == 0.0

    @given(pair_strategy)
    def test_manhattan_dominates_euclidean(self, pair):
        x, y = pair
        assert manhattan_distance(x, y) >= euclidean_distance(x, y) - 1e-9

    @given(st.data())
    def test_euclidean_triangle_inequality(self, data):
        dim = data.draw(st.integers(1, 10))
        elems = st.floats(-100, 100, allow_nan=False, allow_infinity=False)
        x = data.draw(hnp.arrays(np.float64, dim, elements=elems))
        y = data.draw(hnp.arrays(np.float64, dim, elements=elems))
        z = data.draw(hnp.arrays(np.float64, dim, elements=elems))
        assert euclidean_distance(x, z) <= (
            euclidean_distance(x, y) + euclidean_distance(y, z) + 1e-7
        )

    @given(pair_strategy)
    def test_cosine_range(self, pair):
        x, y = pair
        assert -1e-12 <= cosine_distance(x, y) <= 2.0 + 1e-12

    @given(st.data())
    def test_hamming_symmetry_and_bounds(self, data):
        dim = data.draw(st.integers(1, 64))
        x = data.draw(hnp.arrays(np.uint8, dim, elements=st.integers(0, 1)))
        y = data.draw(hnp.arrays(np.uint8, dim, elements=st.integers(0, 1)))
        d = hamming_distance(x, y)
        assert d == hamming_distance(y, x)
        assert 0 <= d <= dim

    @given(st.data())
    def test_jaccard_range(self, data):
        dim = data.draw(st.integers(1, 64))
        x = data.draw(hnp.arrays(np.uint8, dim, elements=st.integers(0, 1)))
        y = data.draw(hnp.arrays(np.uint8, dim, elements=st.integers(0, 1)))
        assert 0.0 <= jaccard_distance(x, y) <= 1.0


class TestHllProperties:
    @given(
        st.lists(st.integers(0, 10**9), min_size=0, max_size=500),
        st.integers(4, 10),
        st.integers(0, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_union(self, elements, p, seed):
        """sketch(A) | sketch(B) == sketch(A ∪ B) for any split of elements."""
        half = len(elements) // 2
        a_part, b_part = elements[:half], elements[half:]
        a = HyperLogLog(p=p, seed=seed)
        b = HyperLogLog(p=p, seed=seed)
        union = HyperLogLog(p=p, seed=seed)
        if a_part:
            a.add_batch(np.array(a_part, dtype=np.uint64))
        if b_part:
            b.add_batch(np.array(b_part, dtype=np.uint64))
        if elements:
            union.add_batch(np.array(elements, dtype=np.uint64))
        assert a.merge(b) == union

    @given(st.lists(st.integers(0, 10**9), min_size=1, max_size=300), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_insertion_order_irrelevant(self, elements, seed):
        forward = HyperLogLog(p=6, seed=seed)
        backward = HyperLogLog(p=6, seed=seed)
        forward.add_batch(np.array(elements, dtype=np.uint64))
        backward.add_batch(np.array(elements[::-1], dtype=np.uint64))
        assert forward == backward

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_estimate_nonnegative_and_monotone_under_merge(self, elements):
        a = HyperLogLog(p=6, seed=0)
        a.add_batch(np.array(elements, dtype=np.uint64))
        before = a.raw_estimate()
        b = HyperLogLog(p=6, seed=0)
        b.add_batch(np.arange(100, dtype=np.uint64))
        a.merge_in_place(b)
        # Raw estimate can only grow when registers only grow.
        assert a.raw_estimate() >= before - 1e-9

    @given(st.integers(2, 14))
    def test_empty_sketch_estimates_zero(self, p):
        assert HyperLogLog(p=p).estimate() == 0.0


class TestParameterRuleProperties:
    @given(
        st.integers(1, 500),
        st.floats(0.01, 0.99),
        st.floats(0.01, 0.999),
    )
    @settings(max_examples=200)
    def test_width_bracketing(self, L, delta, p1):
        """ceil-rule k brackets 1 - delta when not clamped."""
        k = concatenation_width(L, delta, p1, max_k=10_000)
        assert k >= 1
        if k < 10_000:
            assert success_probability(k, L, p1) <= 1 - delta + 1e-9
            if k > 1:
                assert success_probability(k - 1, L, p1) >= 1 - delta - 1e-9

    @given(st.integers(1, 64), st.integers(1, 300), st.floats(0.0, 1.0))
    def test_success_probability_in_unit_interval(self, k, L, p1):
        assert 0.0 <= success_probability(k, L, p1) <= 1.0


class TestEncodeRowsProperties:
    @given(
        hnp.arrays(
            np.int64,
            st.tuples(st.integers(1, 30), st.integers(1, 8)),
            elements=st.integers(-(2**40), 2**40),
        )
    )
    @settings(max_examples=60)
    def test_encoding_injective_per_matrix(self, matrix):
        keys = encode_rows(matrix)
        unique_rows = {tuple(row.tolist()) for row in matrix}
        assert len(set(keys)) == len(unique_rows)


class TestSparseHllProperties:
    @given(
        st.lists(st.integers(0, 10**9), min_size=0, max_size=400),
        st.integers(4, 9),
        st.integers(0, 3),
        st.integers(1, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_sparse_equals_dense_for_any_threshold(self, elements, p, seed, threshold):
        """Whatever the upgrade point, sparse == dense sketch."""
        from repro.sketches.sparse_hll import SparseHyperLogLog

        sparse = SparseHyperLogLog(p=p, seed=seed, dense_threshold=threshold)
        dense = HyperLogLog(p=p, seed=seed)
        if elements:
            arr = np.array(elements, dtype=np.uint64)
            sparse.add_batch(arr)
            dense.add_batch(arr)
        assert sparse.to_dense() == dense

    @given(st.lists(st.integers(0, 10**6), min_size=0, max_size=200), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_sparse_merge_equals_union(self, elements, seed):
        from repro.sketches.sparse_hll import SparseHyperLogLog

        half = len(elements) // 2
        a = SparseHyperLogLog(p=6, seed=seed, dense_threshold=8)
        b = SparseHyperLogLog(p=6, seed=seed, dense_threshold=10**9)
        union = HyperLogLog(p=6, seed=seed)
        if elements[:half]:
            a.add_batch(np.array(elements[:half], dtype=np.uint64))
        if elements[half:]:
            b.add_batch(np.array(elements[half:], dtype=np.uint64))
        if elements:
            union.add_batch(np.array(elements, dtype=np.uint64))
        a.merge_in_place(b)
        assert a.to_dense() == union


class TestKmvProperties:
    @given(st.lists(st.integers(0, 10**9), min_size=0, max_size=300), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_merge_equals_union(self, elements, seed):
        from repro.sketches import KMinValues

        half = len(elements) // 2
        a = KMinValues(k=32, seed=seed)
        b = KMinValues(k=32, seed=seed)
        union = KMinValues(k=32, seed=seed)
        if elements[:half]:
            a.add_batch(np.array(elements[:half], dtype=np.uint64))
        if elements[half:]:
            b.add_batch(np.array(elements[half:], dtype=np.uint64))
        if elements:
            union.add_batch(np.array(elements, dtype=np.uint64))
        a.merge_in_place(b)
        assert a.estimate() == pytest.approx(union.estimate())

    @given(st.lists(st.integers(0, 10**9), min_size=0, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_exact_below_k(self, elements):
        from repro.sketches import KMinValues

        sketch = KMinValues(k=64, seed=0)
        if elements:
            sketch.add_batch(np.array(elements, dtype=np.uint64))
        assert sketch.estimate() == len(set(elements))


class TestBatchScalarConsistency:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_all_metrics_batch_equals_scalar(self, data):
        from repro.distances import get_metric

        dim = data.draw(st.integers(1, 10))
        elems = st.floats(-100, 100, allow_nan=False, allow_infinity=False)
        points = data.draw(
            hnp.arrays(np.float64, (data.draw(st.integers(1, 8)), dim), elements=elems)
        )
        q = data.draw(hnp.arrays(np.float64, dim, elements=elems))
        # Per-metric abs tolerances reflect the intrinsic precision of the
        # kernels, not sloppiness: the batched L2 kernel expands
        # |x - q|^2 = |x|^2 - 2 x.q + |q|^2, which near zero distance
        # cancels to ~ ulp(|x|^2) and yields sqrt(eps) * |x| ~ 5e-6 of
        # absolute error for |x| up to ~300; 1 - cos suffers the same
        # cancellation for near-parallel vectors.  L1 is purely additive
        # and has no such loss.
        tolerances = {"l2": 1e-5, "l1": 1e-7, "cosine": 1e-5}
        for name, abs_tol in tolerances.items():
            metric = get_metric(name)
            batch = metric.distances_to(points, q)
            for i in range(points.shape[0]):
                assert batch[i] == pytest.approx(
                    metric(points[i], q), abs=abs_tol, rel=1e-6
                )


class TestCostModelProperties:
    @given(
        st.floats(1e-6, 1e6),
        st.floats(1e-6, 1e6),
        st.integers(0, 10**7),
        st.floats(0, 1e7),
        st.integers(0, 10**7),
    )
    @settings(max_examples=100)
    def test_decision_consistent_with_costs(self, alpha, beta, collisions, cand, n):
        model = CostModel(alpha=alpha, beta=beta)
        choice = model.choose(collisions, cand, n)
        lsh = model.lsh_cost(collisions, cand)
        linear = model.linear_cost(n)
        assert choice == (Strategy.LSH if lsh < linear else Strategy.LINEAR)

    @given(st.floats(1e-3, 1e3), st.integers(0, 10**6), st.floats(0, 1e6))
    def test_lsh_cost_monotone_in_collisions(self, ratio, collisions, cand):
        model = CostModel.from_ratio(ratio)
        assert model.lsh_cost(collisions + 1, cand) > model.lsh_cost(collisions, cand)
