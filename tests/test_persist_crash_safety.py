"""Crash-safe persistence: atomic saves, typed errors on torn artifacts.

Two halves of the same contract.  Writing: every file in a saved index
reaches its final name via fsync'd write-to-temp + atomic rename (the
metadata committing last), so a crash mid-save can never leave a
half-written file under a final name — and no ``.tmp-*`` / ``.old-*``
debris survives a successful save.  Reading: a truncated or corrupted
artifact fails :meth:`repro.api.Index.open` with the typed
:class:`~repro.exceptions.CorruptArtifactError` naming the damaged
piece, never a raw ``ValueError``/``EOFError`` from ``np.load`` or a
silently wrong index.
"""

import json
import os

import numpy as np
import pytest

from repro.api import Index, IndexSpec
from repro.exceptions import ConfigurationError, CorruptArtifactError
from repro.service.workers import WorkerPool

N, DIM, SHARDS = 300, 10, 2


def _spec(**overrides):
    base = dict(
        metric="l2",
        radius=1.1,
        num_tables=6,
        num_shards=SHARDS,
        layout="frozen",
        cost_ratio=6.0,
        seed=3,
    )
    base.update(overrides)
    return IndexSpec(**base)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(2)
    return rng.normal(size=(N, DIM))


@pytest.fixture()
def saved(tmp_path, points):
    """A freshly saved frozen-layout artifact, one per test (mutated)."""
    index = Index.build(points, _spec())
    path = str(tmp_path / "idx")
    index.save(path)
    index.close()
    return path


def _some_shard_array(path):
    shard_dir = os.path.join(path, "shard_000.frozen")
    return os.path.join(shard_dir, "members.npy")


class TestAtomicWrites:
    def test_save_leaves_no_staging_debris(self, saved):
        leftovers = [
            os.path.join(dirpath, name)
            for dirpath, dirnames, filenames in os.walk(saved)
            for name in list(dirnames) + list(filenames)
            if ".tmp-" in name or ".old-" in name
        ]
        assert leftovers == []

    def test_resave_over_existing_artifact_stays_loadable(self, saved, points):
        index = Index.open(saved)
        try:
            index.save(saved)
        finally:
            index.close()
        reopened = Index.open(saved)
        try:
            assert reopened.n == N
            result = reopened.query_batch(points[:1])[0]
            assert 0 in result.ids
        finally:
            reopened.close()

    def test_metadata_is_valid_json_with_required_keys(self, saved):
        with open(os.path.join(saved, "index.json"), encoding="utf-8") as fh:
            meta = json.load(fh)
        for key in ("spec", "cost_model", "n", "dim", "num_shards"):
            assert key in meta


class TestTornArtifacts:
    def test_truncated_shard_array_raises_typed_error(self, saved):
        target = _some_shard_array(saved)
        with open(target, "rb") as fh:
            head = fh.read(20)
        with open(target, "wb") as fh:
            fh.write(head)
        with pytest.raises(CorruptArtifactError, match="members"):
            Index.open(saved)

    def test_missing_shard_array_raises_typed_error(self, saved):
        os.remove(_some_shard_array(saved))
        with pytest.raises(CorruptArtifactError, match="missing"):
            Index.open(saved)

    def test_corrupt_index_metadata_raises_typed_error(self, saved):
        meta_path = os.path.join(saved, "index.json")
        with open(meta_path, "w", encoding="utf-8") as fh:
            fh.write('{"spec": {"metric": "l2"')  # torn mid-write
        with pytest.raises(CorruptArtifactError):
            Index.open(saved)

    def test_metadata_missing_required_key_raises_typed_error(self, saved):
        meta_path = os.path.join(saved, "index.json")
        with open(meta_path, encoding="utf-8") as fh:
            meta = json.load(fh)
        del meta["num_shards"]
        with open(meta_path, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
        with pytest.raises(CorruptArtifactError, match="num_shards"):
            Index.open(saved)

    def test_corrupt_shard_config_raises_typed_error(self, saved):
        config_path = os.path.join(saved, "shard_000.frozen", "config.json")
        with open(config_path, "w", encoding="utf-8") as fh:
            fh.write("not json {")
        with pytest.raises(CorruptArtifactError):
            Index.open(saved)

    def test_corrupt_gids_archive_raises_typed_error(self, saved):
        gids_path = os.path.join(saved, "shard_gids.npz")
        with open(gids_path, "wb") as fh:
            fh.write(b"PK\x03\x04 torn")
        with pytest.raises(CorruptArtifactError):
            Index.open(saved)

    def test_missing_metadata_stays_a_configuration_error(self, saved):
        os.remove(os.path.join(saved, "index.json"))
        with pytest.raises(ConfigurationError):
            Index.open(saved)

    def test_worker_pool_surfaces_shard_corruption(self, saved):
        """The process pool's startup ack path keeps the typed error."""
        target = _some_shard_array(saved)
        with open(target, "rb") as fh:
            head = fh.read(20)
        with open(target, "wb") as fh:
            fh.write(head)
        with pytest.raises(CorruptArtifactError):
            WorkerPool(saved, num_workers=1)
