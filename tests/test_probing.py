"""Tests for multi-probe perturbation sequences."""

import numpy as np
import pytest

from repro.hashing.composite import encode_rows
from repro.hashing.probing import hamming_probe_keys, perturbation_offsets


class TestPerturbationOffsets:
    def test_count(self):
        assert len(perturbation_offsets(k=4, num_probes=6)) == 6

    def test_zero_probes(self):
        assert perturbation_offsets(k=4, num_probes=0) == []

    def test_no_zero_vector(self):
        for delta in perturbation_offsets(k=3, num_probes=10):
            assert np.any(delta != 0)

    def test_values_in_pm_one(self):
        for delta in perturbation_offsets(k=3, num_probes=20):
            assert set(np.unique(delta)) <= {-1, 0, 1}

    def test_single_perturbations_first(self):
        offsets = perturbation_offsets(k=5, num_probes=10)
        # 5 coordinates x 2 signs = 10 weight-1 offsets come first.
        assert all(np.count_nonzero(d) == 1 for d in offsets)

    def test_weight_two_after_weight_one(self):
        offsets = perturbation_offsets(k=2, num_probes=8)
        weights = [int(np.count_nonzero(d)) for d in offsets]
        assert weights == sorted(weights)

    def test_distinct(self):
        offsets = perturbation_offsets(k=3, num_probes=15)
        keys = {tuple(d.tolist()) for d in offsets}
        assert len(keys) == len(offsets)

    def test_exhausts_gracefully(self):
        """Asking for more probes than exist returns all of them."""
        offsets = perturbation_offsets(k=1, num_probes=100)
        assert len(offsets) == 2  # only -1 and +1 for a single coordinate

    def test_negative_probes_raises(self):
        with pytest.raises(ValueError):
            perturbation_offsets(k=3, num_probes=-1)


class TestHammingProbeKeys:
    def test_count(self):
        row = np.array([0, 1, 0, 1])
        assert len(hamming_probe_keys(row, num_probes=4)) == 4

    def test_single_flips_first(self):
        row = np.array([0, 0, 0])
        keys = hamming_probe_keys(row, num_probes=3)
        expected = [
            encode_rows(np.array([[1, 0, 0]]))[0],
            encode_rows(np.array([[0, 1, 0]]))[0],
            encode_rows(np.array([[0, 0, 1]]))[0],
        ]
        assert keys == expected

    def test_home_bucket_excluded(self):
        row = np.array([1, 0])
        home = encode_rows(row[None, :])[0]
        assert home not in hamming_probe_keys(row, num_probes=5)

    def test_distinct(self):
        row = np.array([0, 1, 1, 0, 1])
        keys = hamming_probe_keys(row, num_probes=12)
        assert len(set(keys)) == len(keys)

    def test_zero_probes(self):
        assert hamming_probe_keys(np.array([0, 1]), num_probes=0) == []

    def test_negative_probes_raises(self):
        with pytest.raises(ValueError):
            hamming_probe_keys(np.array([0, 1]), num_probes=-2)
