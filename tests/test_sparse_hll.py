"""Tests for the sparse HyperLogLog representation."""

import numpy as np
import pytest

from repro.exceptions import SketchError
from repro.sketches import HyperLogLog
from repro.sketches.sparse_hll import SparseHyperLogLog


class TestEquivalence:
    def test_to_dense_matches_direct_dense(self):
        sparse = SparseHyperLogLog(p=7, seed=3, dense_threshold=10_000)
        dense = HyperLogLog(p=7, seed=3)
        elements = np.arange(500)
        sparse.add_batch(elements)
        dense.add_batch(elements)
        assert sparse.to_dense() == dense

    def test_estimate_matches_dense(self):
        sparse = SparseHyperLogLog(p=7, seed=3, dense_threshold=10_000)
        dense = HyperLogLog(p=7, seed=3)
        elements = np.arange(2000)
        sparse.add_batch(elements)
        dense.add_batch(elements)
        assert sparse.estimate() == pytest.approx(dense.estimate())

    def test_scalar_add_matches_batch(self):
        a = SparseHyperLogLog(p=6, seed=1, dense_threshold=10_000)
        b = SparseHyperLogLog(p=6, seed=1, dense_threshold=10_000)
        for i in range(100):
            a.add(i)
        b.add_batch(np.arange(100))
        assert a.to_dense() == b.to_dense()


class TestUpgrade:
    def test_starts_sparse(self):
        assert not SparseHyperLogLog(p=7).is_dense

    def test_upgrades_past_threshold(self):
        sketch = SparseHyperLogLog(p=7, seed=0, dense_threshold=8)
        sketch.add_batch(np.arange(10_000))
        assert sketch.is_dense

    def test_upgrade_preserves_registers(self):
        elements = np.arange(5_000)
        upgrading = SparseHyperLogLog(p=7, seed=0, dense_threshold=8)
        never = SparseHyperLogLog(p=7, seed=0, dense_threshold=10**9)
        upgrading.add_batch(elements)
        never.add_batch(elements)
        assert upgrading.to_dense() == never.to_dense()

    def test_memory_smaller_when_sparse(self):
        sketch = SparseHyperLogLog(p=10, seed=0)  # m = 1024
        sketch.add(1)
        sketch.add(2)
        assert sketch.memory_bytes < HyperLogLog(p=10).memory_bytes

    def test_dense_adds_continue_working(self):
        sketch = SparseHyperLogLog(p=6, seed=0, dense_threshold=4)
        sketch.add_batch(np.arange(1000))
        assert sketch.is_dense
        sketch.add(5000)
        sketch.add_batch(np.arange(1000, 1200))
        reference = HyperLogLog(p=6, seed=0)
        reference.add_batch(np.arange(1200))
        reference.add(5000)
        assert sketch.to_dense() == reference


class TestMerge:
    def test_sparse_sparse_merge(self):
        a = SparseHyperLogLog(p=6, seed=2, dense_threshold=10_000)
        b = SparseHyperLogLog(p=6, seed=2, dense_threshold=10_000)
        a.add_batch(np.arange(0, 60))
        b.add_batch(np.arange(40, 120))
        a.merge_in_place(b)
        union = HyperLogLog(p=6, seed=2)
        union.add_batch(np.arange(0, 120))
        assert a.to_dense() == union

    def test_sparse_dense_merge(self):
        sparse = SparseHyperLogLog(p=6, seed=2, dense_threshold=10_000)
        dense = HyperLogLog(p=6, seed=2)
        sparse.add_batch(np.arange(0, 50))
        dense.add_batch(np.arange(30, 100))
        sparse.merge_in_place(dense)
        union = HyperLogLog(p=6, seed=2)
        union.add_batch(np.arange(0, 100))
        assert sparse.to_dense() == union

    def test_incompatible_merge_raises(self):
        with pytest.raises(SketchError):
            SparseHyperLogLog(p=6).merge_in_place(SparseHyperLogLog(p=7))
        with pytest.raises(SketchError):
            SparseHyperLogLog(p=6, seed=0).merge_in_place(HyperLogLog(p=6, seed=1))
        with pytest.raises(SketchError):
            SparseHyperLogLog(p=6).merge_in_place(object())


class TestMisc:
    def test_empty(self):
        sketch = SparseHyperLogLog(p=6)
        assert sketch.is_empty()
        assert sketch.estimate() == 0.0

    def test_empty_batch(self):
        sketch = SparseHyperLogLog(p=6)
        sketch.add_batch(np.empty(0, dtype=np.uint64))
        assert sketch.is_empty()

    def test_repr(self):
        sketch = SparseHyperLogLog(p=6)
        assert "sparse" in repr(sketch)
        sketch2 = SparseHyperLogLog(p=6, dense_threshold=0)
        sketch2.add(1)
        assert "dense" in repr(sketch2)
