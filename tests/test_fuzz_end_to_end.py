"""Hypothesis-driven end-to-end fuzzing of the search stack.

These tests generate random datasets, parameters and radii and assert
the structural invariants that must hold for *every* input:

* LSH search reports a subset of the exact answer (no false positives);
* hybrid search equals whichever pure strategy it dispatched to;
* the covering index reports exactly the true neighbor set at its
  construction radius;
* estimates and collision counts are internally consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CostModel, HybridSearcher, LinearScan, LSHSearch
from repro.hashing import PStableLSH, SimHashLSH
from repro.index import CoveringLSHIndex, LSHIndex


@st.composite
def gaussian_case(draw):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(30, 150))
    dim = draw(st.integers(2, 12))
    k = draw(st.integers(1, 5))
    num_tables = draw(st.integers(1, 8))
    radius = draw(st.floats(0.1, 5.0))
    rng = np.random.default_rng(seed)
    points = rng.normal(scale=draw(st.floats(0.2, 3.0)), size=(n, dim))
    return points, k, num_tables, radius, seed


@st.composite
def binary_case(draw):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(20, 120))
    dim = draw(st.integers(6, 32))
    radius = draw(st.integers(1, 5))
    rng = np.random.default_rng(seed)
    points = rng.integers(0, 2, size=(n, dim)).astype(np.uint8)
    return points, min(radius, dim - 1), seed


class TestLSHSoundness:
    @given(gaussian_case())
    @settings(max_examples=25, deadline=None)
    def test_lsh_reports_subset_of_truth(self, case):
        points, k, num_tables, radius, seed = case
        index = LSHIndex(
            PStableLSH(points.shape[1], w=max(radius, 0.5), p=2, seed=seed),
            k=k,
            num_tables=num_tables,
        ).build(points)
        searcher = LSHSearch(index)
        scan = LinearScan(points, "l2")
        q = points[0]
        reported = set(searcher.query(q, radius).ids.tolist())
        truth = set(scan.query(q, radius).ids.tolist())
        assert reported <= truth
        assert 0 in reported  # self always collides with itself

    @given(gaussian_case())
    @settings(max_examples=25, deadline=None)
    def test_collisions_bound_candidates(self, case):
        points, k, num_tables, radius, seed = case
        index = LSHIndex(
            SimHashLSH(points.shape[1], seed=seed), k=k, num_tables=num_tables
        ).build(points)
        lookup = index.lookup(points[0])
        candidates = index.candidate_ids(lookup)
        assert candidates.size <= lookup.num_collisions
        assert lookup.num_collisions <= index.n * num_tables


class TestHybridSoundness:
    @given(gaussian_case(), st.floats(0.01, 100.0))
    @settings(max_examples=25, deadline=None)
    def test_hybrid_equals_dispatched_strategy(self, case, ratio):
        points, k, num_tables, radius, seed = case
        index = LSHIndex(
            PStableLSH(points.shape[1], w=max(radius, 0.5), p=2, seed=seed),
            k=k,
            num_tables=num_tables,
        ).build(points)
        model = CostModel.from_ratio(ratio)
        hybrid = HybridSearcher(index, model)
        q = points[0]
        result = hybrid.query(q, radius)
        if result.stats.strategy.value == "linear":
            expected = LinearScan(points, "l2").query(q, radius).ids
        else:
            expected = LSHSearch(index).query(q, radius).ids
        assert np.array_equal(result.ids, expected)

    @given(gaussian_case())
    @settings(max_examples=20, deadline=None)
    def test_stats_costs_consistent(self, case):
        points, k, num_tables, radius, seed = case
        index = LSHIndex(
            SimHashLSH(points.shape[1], seed=seed), k=k, num_tables=num_tables
        ).build(points)
        model = CostModel.from_ratio(3.0)
        hybrid = HybridSearcher(index, model)
        stats = hybrid.query(points[0], radius if radius <= 2.0 else 1.0).stats
        recomputed = model.lsh_cost(stats.num_collisions, stats.estimated_candidates)
        assert stats.estimated_lsh_cost == pytest.approx(recomputed)
        assert stats.linear_cost == pytest.approx(model.linear_cost(index.n))


class TestCoveringExactness:
    @given(binary_case())
    @settings(max_examples=25, deadline=None)
    def test_covering_equals_truth_at_construction_radius(self, case):
        points, radius, seed = case
        index = CoveringLSHIndex(
            dim=points.shape[1], radius=radius, seed=seed
        ).build(points)
        scan = LinearScan(points, "hamming")
        searcher = LSHSearch(index)
        q = points[0]
        assert np.array_equal(
            searcher.query(q, float(radius)).ids, scan.query(q, float(radius)).ids
        )
