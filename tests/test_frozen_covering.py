"""Frozen covering layout: unit tests + bit-identity properties.

The covering index's tables have *different* key widths (one per bit
block), so this module also pins the padded fused-key-matrix design:
every primitive must agree byte-for-byte with the dict layout, the
no-false-negative guarantee must survive freezing and inserts, and the
artifact must reopen via ``np.load(mmap_mode="r")`` and serve under
``execution="processes"``.
"""

import numpy as np
import pytest

from repro.api import Index, IndexSpec, QuerySpec
from repro.core import CostModel, HybridSearcher, LinearScan
from repro.exceptions import ConfigurationError
from repro.index import CoveringLSHIndex, FrozenCoveringLSHIndex
from repro.index.frozen import load_frozen_index, save_frozen_index


def binary(rng, n, dim):
    return (rng.random((n, dim)) < 0.5).astype(np.float64)


def build_pair(n=250, dim=32, radius=4, seed=0):
    rng = np.random.default_rng(seed)
    points = binary(rng, n, dim)
    index = CoveringLSHIndex(dim=dim, radius=radius, seed=1).build(points)
    return rng, points, index, index.freeze(refreeze_threshold=8)


def assert_equal_results(a, b):
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.distances, b.distances)
    assert a.stats.strategy == b.stats.strategy
    assert a.stats.num_collisions == b.stats.num_collisions


class TestFreeze:
    def test_freeze_returns_frozen_covering(self):
        _, _, index, frozen = build_pair()
        assert isinstance(frozen, FrozenCoveringLSHIndex)
        assert frozen.layout == "frozen"
        assert frozen.variant == "covering"
        assert frozen.radius == index.radius
        assert frozen.num_tables == index.num_tables

    def test_key_width_is_widest_block(self):
        _, _, index, frozen = build_pair(dim=30, radius=3)
        widest = max(block.size for block in index._blocks)
        assert frozen.key_width == 8 * widest
        assert frozen.frozen.key_width == 8 * widest

    def test_unbuilt_rejected(self):
        index = CoveringLSHIndex(dim=16, radius=2)
        with pytest.raises(Exception):
            index.freeze()


class TestBitIdentity:
    def test_primitives_agree(self):
        rng, points, index, frozen = build_pair()
        queries = np.concatenate([binary(rng, 6, 32), points[:2]])
        dict_lookups = [index.lookup(q) for q in queries]
        frozen_lookups = frozen.lookup_batch(queries)
        for la, lb in zip(dict_lookups, frozen_lookups):
            assert la.num_collisions == lb.num_collisions
            assert np.array_equal(
                index.candidate_ids(la, dedup="vectorized"),
                frozen.candidate_ids(lb, dedup="vectorized"),
            )
            assert np.array_equal(
                index.candidate_ids(la, dedup="scalar"),
                frozen.candidate_ids(lb, dedup="scalar"),
            )
            assert np.array_equal(
                index.merged_sketch(la).registers,
                frozen.merged_sketch(lb).registers,
            )
        assert np.array_equal(
            index.merged_estimates_batch(dict_lookups),
            frozen.merged_estimates_batch(frozen_lookups),
        )

    def test_dict_lookup_batch_matches_lookup_loop(self):
        rng, points, index, _ = build_pair()
        queries = np.concatenate([binary(rng, 5, 32), points[:2]])
        for qi, lookup in enumerate(index.lookup_batch(queries)):
            single = index.lookup(queries[qi])
            assert lookup.keys == single.keys
            assert lookup.num_collisions == single.num_collisions

    def test_queries_agree_single_and_batch(self):
        rng, points, index, frozen = build_pair()
        cm = CostModel.from_ratio(1.0)
        a, b = HybridSearcher(index, cm), HybridSearcher(frozen, cm)
        queries = np.concatenate([binary(rng, 6, 32), points[:2]])
        for q in queries:
            assert_equal_results(a.query(q, 4.0), b.query(q, 4.0))
        for ra, rb in zip(a.query_batch(queries, 4.0), b.query_batch(queries, 4.0)):
            assert_equal_results(ra, rb)

    def test_insert_then_refreeze_agree(self):
        rng, points, index, frozen = build_pair()
        cm = CostModel.from_ratio(1.0)
        a, b = HybridSearcher(index, cm), HybridSearcher(frozen, cm)
        queries = points[:5]
        new = binary(rng, 20, 32)
        assert np.array_equal(index.insert(new), frozen.insert(new))
        for q in queries:
            assert_equal_results(a.query(q, 4.0), b.query(q, 4.0))
        frozen.refreeze()
        assert frozen.overflow_count == 0
        for ra, rb in zip(a.query_batch(queries, 4.0), b.query_batch(queries, 4.0)):
            assert_equal_results(ra, rb)


class TestCoveringGuarantee:
    def test_no_false_negatives_after_freeze_and_insert(self):
        """The covering property must survive compaction and inserts."""
        rng, points, index, frozen = build_pair(radius=4)
        new = binary(rng, 30, 32)
        index.insert(new)
        frozen.insert(new)
        all_points = np.concatenate([points, new])
        scan = LinearScan(all_points, "hamming")
        for engine in (index, frozen):
            for i in (0, 7, 252, 270):
                q = all_points[i]
                truth = set(scan.query(q, radius=4.0).ids.tolist())
                got = set(engine.candidate_ids(engine.lookup(q)).tolist())
                assert truth <= got


class TestPersistence:
    def test_mmap_round_trip(self, tmp_path):
        rng, points, index, frozen = build_pair()
        path = str(tmp_path / "cov.frozen")
        save_frozen_index(frozen, path)
        reopened = load_frozen_index(path, mmap_mode="r")
        assert isinstance(reopened, FrozenCoveringLSHIndex)
        assert isinstance(reopened.frozen.members, np.memmap)
        assert [b.tolist() for b in reopened._blocks] == [
            b.tolist() for b in frozen._blocks
        ]
        cm = CostModel.from_ratio(1.0)
        a, b = HybridSearcher(frozen, cm), HybridSearcher(reopened, cm)
        queries = np.concatenate([binary(rng, 5, 32), points[:2]])
        for ra, rb in zip(a.query_batch(queries, 4.0), b.query_batch(queries, 4.0)):
            assert_equal_results(ra, rb)

    def test_dict_layout_npz_round_trip(self, tmp_path):
        from repro.index.serialize import load_index, save_index

        rng, points, index, _ = build_pair()
        path = str(tmp_path / "cov.npz")
        save_index(index, path)
        reopened = load_index(path)
        assert isinstance(reopened, CoveringLSHIndex)
        assert reopened.radius == index.radius
        for q in points[:4]:
            assert np.array_equal(
                index.candidate_ids(index.lookup(q)),
                reopened.candidate_ids(reopened.lookup(q)),
            )


class TestSpecAndFacade:
    def test_spec_validation(self):
        spec = IndexSpec(metric="hamming", radius=4.0, variant="covering")
        assert IndexSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ConfigurationError):
            IndexSpec(metric="l2", radius=4.0, variant="covering")
        with pytest.raises(ConfigurationError):
            IndexSpec(metric="hamming", radius=4.5, variant="covering")
        with pytest.raises(ConfigurationError):
            IndexSpec(metric="hamming", radius=4.0, variant="covering", k=3)

    @pytest.mark.parametrize("layout", ["dict", "frozen"])
    def test_facade_layouts_agree(self, layout):
        rng = np.random.default_rng(3)
        points = binary(rng, 350, 32)
        spec = IndexSpec(
            metric="hamming", radius=4.0, variant="covering",
            layout=layout, seed=1,
        )
        index = Index.build(points, spec)
        reference = Index.build(points, spec.with_overrides(layout="dict"))
        for ra, rb in zip(
            index.query(QuerySpec(points[:12])),
            reference.query(QuerySpec(points[:12])),
        ):
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)
        topk = index.query(QuerySpec(points[5], k=3))
        assert int(topk.ids[0]) == 5

    def test_facade_save_open(self, tmp_path):
        rng = np.random.default_rng(4)
        points = binary(rng, 300, 32)
        spec = IndexSpec(
            metric="hamming", radius=4.0, variant="covering",
            layout="frozen", num_shards=2, seed=1,
        )
        index = Index.build(points, spec)
        expected = index.query(QuerySpec(points[:10]))
        path = str(tmp_path / "artifact")
        index.save(path)
        reopened = Index.open(path)
        for ra, rb in zip(expected, reopened.query(QuerySpec(points[:10]))):
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)
        reopened.close()
        index.close()


class TestProcesses:
    def test_worker_pool_matches_threads(self):
        rng = np.random.default_rng(5)
        points = binary(rng, 300, 32)
        base = IndexSpec(
            metric="hamming", radius=4.0, variant="covering",
            layout="frozen", num_shards=2, seed=1,
        )
        threads = Index.build(points, base)
        processes = Index.build(points, base.with_overrides(execution="processes"))
        try:
            a = threads.query(QuerySpec(points[:10]))
            b = processes.query(QuerySpec(points[:10]))
            for ra, rb in zip(a, b):
                assert np.array_equal(ra.ids, rb.ids)
                assert np.array_equal(ra.distances, rb.distances)
        finally:
            processes.close()
            threads.close()


# ----------------------------------------------------------------------
# Hypothesis properties (optional dependency)
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis"
)
from hypothesis import given, settings
from hypothesis import strategies as st


@st.composite
def covering_scenario(draw):
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(40, 140))
    dim = draw(st.integers(8, 40))
    radius = draw(st.integers(1, 6))
    num_queries = draw(st.integers(1, 5))
    num_inserts = draw(st.integers(0, 12))
    return seed, n, dim, min(radius, dim - 1), num_queries, num_inserts


class TestCoveringProperties:
    @settings(max_examples=20, deadline=None)
    @given(covering_scenario())
    def test_dict_and_frozen_layouts_agree_everywhere(self, scenario):
        seed, n, dim, radius, num_queries, num_inserts = scenario
        rng = np.random.default_rng(seed)
        points = binary(rng, n, dim)
        index = CoveringLSHIndex(dim=dim, radius=radius, seed=seed).build(points)
        frozen = index.freeze(refreeze_threshold=4)
        cm = CostModel.from_ratio(2.0)
        a, b = HybridSearcher(index, cm), HybridSearcher(frozen, cm)
        queries = np.concatenate([binary(rng, num_queries, dim), points[:2]])
        q_radius = float(radius)
        for q in queries:
            assert_equal_results(a.query(q, q_radius), b.query(q, q_radius))
        for ra, rb in zip(
            a.query_batch(queries, q_radius), b.query_batch(queries, q_radius)
        ):
            assert_equal_results(ra, rb)
        if num_inserts:
            new = binary(rng, num_inserts, dim)
            assert np.array_equal(index.insert(new), frozen.insert(new))
            for q in queries:
                assert_equal_results(a.query(q, q_radius), b.query(q, q_radius))
            frozen.refreeze()
            for ra, rb in zip(
                a.query_batch(queries, q_radius), b.query_batch(queries, q_radius)
            ):
                assert_equal_results(ra, rb)
