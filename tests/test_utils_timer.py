"""Tests for repro.utils.timer."""

import pytest

from repro.utils.timer import Timer


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first >= 0.0

    def test_manual_start_stop(self):
        t = Timer()
        t.start()
        interval = t.stop()
        assert interval >= 0.0
        assert t.elapsed == pytest.approx(interval)

    def test_double_start_raises(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert not t.running

    def test_running_flag(self):
        t = Timer()
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running
