"""Tests for buckets and the small-bucket (lazy sketch) trick."""

import numpy as np
import pytest

from repro.index.bucket import Bucket
from repro.sketches import HyperLogLog, PrecomputedHllHashes


@pytest.fixture
def hashes():
    return PrecomputedHllHashes(1000, p=5, seed=4)


class TestBucketBasics:
    def test_append_and_size(self, hashes):
        bucket = Bucket(hll_precision=5, hll_seed=4)
        for i in range(10):
            bucket.append(i, hashes)
        assert bucket.size == 10
        assert len(bucket) == 10

    def test_ids_array(self, hashes):
        bucket = Bucket(hll_precision=5, hll_seed=4)
        bucket.append(3, hashes)
        bucket.append(7, hashes)
        assert bucket.ids.tolist() == [3, 7]
        assert bucket.ids.dtype == np.int64

    def test_ids_cache_invalidated_on_append(self, hashes):
        bucket = Bucket(hll_precision=5, hll_seed=4)
        bucket.append(1, hashes)
        _ = bucket.ids
        bucket.append(2, hashes)
        assert bucket.ids.tolist() == [1, 2]


class TestLazySketch:
    def test_small_bucket_has_no_sketch(self, hashes):
        bucket = Bucket(hll_precision=5, hll_seed=4)  # threshold = 32
        for i in range(32):
            bucket.append(i, hashes)
        assert not bucket.has_sketch
        assert bucket.sketch_memory_bytes == 0

    def test_sketch_materialises_past_threshold(self, hashes):
        bucket = Bucket(hll_precision=5, hll_seed=4)
        for i in range(33):
            bucket.append(i, hashes)
        assert bucket.has_sketch
        assert bucket.sketch_memory_bytes == 32

    def test_materialised_sketch_covers_all_ids(self, hashes):
        """The sketch built late must equal one built from the start."""
        bucket = Bucket(hll_precision=5, hll_seed=4)
        for i in range(100):
            bucket.append(i, hashes)
        reference = HyperLogLog(p=5, seed=4)
        reference.add_batch(np.arange(100))
        assert bucket.sketch == reference

    def test_threshold_zero_sketches_immediately(self, hashes):
        bucket = Bucket(hll_precision=5, hll_seed=4, lazy_threshold=0)
        bucket.append(0, hashes)
        assert bucket.has_sketch

    def test_custom_threshold(self, hashes):
        bucket = Bucket(hll_precision=5, hll_seed=4, lazy_threshold=5)
        for i in range(5):
            bucket.append(i, hashes)
        assert not bucket.has_sketch
        bucket.append(5, hashes)
        assert bucket.has_sketch

    def test_no_hashes_means_no_sketch(self):
        bucket = Bucket(hll_precision=5, hll_seed=4, lazy_threshold=0)
        bucket.append(0, None)
        assert not bucket.has_sketch


class TestContributeTo:
    def test_lazy_bucket_contributes_raw_ids(self, hashes):
        bucket = Bucket(hll_precision=5, hll_seed=4)
        for i in range(10):
            bucket.append(i, hashes)
        merged = HyperLogLog(p=5, seed=4)
        bucket.contribute_to(merged, hashes)
        reference = HyperLogLog(p=5, seed=4)
        reference.add_batch(np.arange(10))
        assert merged == reference

    def test_sketched_bucket_contributes_sketch(self, hashes):
        bucket = Bucket(hll_precision=5, hll_seed=4, lazy_threshold=0)
        for i in range(50):
            bucket.append(i, hashes)
        merged = HyperLogLog(p=5, seed=4)
        bucket.contribute_to(merged, hashes)
        reference = HyperLogLog(p=5, seed=4)
        reference.add_batch(np.arange(50))
        assert merged == reference

    def test_lazy_and_eager_agree(self, hashes):
        """The small-bucket trick must not change the merged estimate."""
        lazy = Bucket(hll_precision=5, hll_seed=4, lazy_threshold=100)
        eager = Bucket(hll_precision=5, hll_seed=4, lazy_threshold=0)
        for i in range(60):
            lazy.append(i, hashes)
            eager.append(i, hashes)
        merged_lazy = HyperLogLog(p=5, seed=4)
        merged_eager = HyperLogLog(p=5, seed=4)
        lazy.contribute_to(merged_lazy, hashes)
        eager.contribute_to(merged_eager, hashes)
        assert merged_lazy == merged_eager

    def test_empty_bucket_contributes_nothing(self, hashes):
        bucket = Bucket(hll_precision=5, hll_seed=4)
        merged = HyperLogLog(p=5, seed=4)
        bucket.contribute_to(merged, hashes)
        assert merged.is_empty()

    def test_repr(self, hashes):
        bucket = Bucket(hll_precision=5, hll_seed=4)
        assert "lazy" in repr(bucket)
