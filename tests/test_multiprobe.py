"""Tests for the multi-probe LSH index extension."""

import pytest

from repro.core import CostModel, HybridSearcher, LSHSearch
from repro.exceptions import ConfigurationError
from repro.hashing import BitSamplingLSH, PStableLSH, SimHashLSH
from repro.index import LSHIndex, MultiProbeLSHIndex


class TestMultiProbeLookup:
    def test_probe_count_per_table(self, gaussian_points):
        index = MultiProbeLSHIndex(
            SimHashLSH(16, seed=1), k=6, num_tables=5, num_probes=3
        ).build(gaussian_points)
        lookup = index.lookup(gaussian_points[0])
        assert len(lookup.keys) == 5 * (1 + 3)
        assert len(lookup.hash_rows) == 5

    def test_zero_probes_equals_classic(self, gaussian_points):
        classic = LSHIndex(SimHashLSH(16, seed=1), k=6, num_tables=5).build(gaussian_points)
        probed = MultiProbeLSHIndex(
            SimHashLSH(16, seed=1), k=6, num_tables=5, num_probes=0
        ).build(gaussian_points)
        q = gaussian_points[3]
        assert classic.lookup(q).keys == probed.lookup(q).keys

    def test_probing_never_loses_candidates(self, gaussian_points):
        classic = LSHIndex(SimHashLSH(16, seed=1), k=6, num_tables=5).build(gaussian_points)
        probed = MultiProbeLSHIndex(
            SimHashLSH(16, seed=1), k=6, num_tables=5, num_probes=4
        ).build(gaussian_points)
        q = gaussian_points[7]
        base = set(classic.candidate_ids(classic.lookup(q)).tolist())
        extended = set(probed.candidate_ids(probed.lookup(q)).tolist())
        assert base <= extended

    def test_probing_improves_recall_with_few_tables(self, gaussian_points):
        """Probes substitute for tables: recall with L=3+probes >= L=3 alone."""
        radius = 1.5
        q = gaussian_points[11]
        classic = LSHIndex(
            PStableLSH(16, w=2.0, p=2, seed=2), k=6, num_tables=3
        ).build(gaussian_points)
        probed = MultiProbeLSHIndex(
            PStableLSH(16, w=2.0, p=2, seed=2), k=6, num_tables=3, num_probes=8
        ).build(gaussian_points)
        found_classic = LSHSearch(classic).query(q, radius).output_size
        found_probed = LSHSearch(probed).query(q, radius).output_size
        assert found_probed >= found_classic

    def test_negative_probes_raises(self):
        with pytest.raises(ConfigurationError):
            MultiProbeLSHIndex(SimHashLSH(4, seed=0), k=2, num_tables=2, num_probes=-1)

    def test_binary_family_uses_bit_flips(self, binary_points):
        index = MultiProbeLSHIndex(
            BitSamplingLSH(32, seed=1), k=5, num_tables=4, num_probes=3
        ).build(binary_points)
        lookup = index.lookup(binary_points[0])
        assert len(lookup.keys) == 4 * 4

    def test_pstable_offsets_precomputed(self, gaussian_points):
        index = MultiProbeLSHIndex(
            PStableLSH(16, w=2.0, p=2, seed=1), k=4, num_tables=2, num_probes=5
        )
        assert not index._binary_values
        assert index._probe_deltas.shape == (5, 4)

    def test_repr_mentions_probes(self):
        index = MultiProbeLSHIndex(SimHashLSH(4, seed=0), k=2, num_tables=2, num_probes=7)
        assert "probes=7" in repr(index)


class TestHybridOnMultiProbe:
    def test_hybrid_searcher_works_unchanged(self, gaussian_points):
        """The paper's future-work claim: hybrid drops onto multi-probe."""
        index = MultiProbeLSHIndex(
            PStableLSH(16, w=2.0, p=2, seed=3), k=4, num_tables=4, num_probes=4
        ).build(gaussian_points)
        hybrid = HybridSearcher(index, CostModel.from_ratio(5.0))
        result = hybrid.query(gaussian_points[0], radius=1.0)
        assert 0 in result.ids
        assert result.stats.num_collisions >= 4

    def test_merged_sketch_covers_probed_buckets(self, gaussian_points):
        index = MultiProbeLSHIndex(
            PStableLSH(16, w=2.0, p=2, seed=3), k=4, num_tables=4, num_probes=4
        ).build(gaussian_points)
        lookup = index.lookup(gaussian_points[0])
        exact = index.candidate_ids(lookup).size
        estimate = index.merged_sketch(lookup).estimate()
        assert exact > 0
        assert abs(estimate - exact) / exact < 0.5
