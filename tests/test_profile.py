"""Tests for dataset distance/hardness profiling."""

import numpy as np
import pytest

from repro.datasets import webspam_like
from repro.evaluation.profile import (
    distance_profile,
    hardness_profile,
    suggest_radii,
)
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def profile():
    rng = np.random.default_rng(3)
    points = rng.normal(size=(800, 12))
    return distance_profile(points, "l2", num_queries=30, num_points=400, seed=0), points


class TestDistanceProfile:
    def test_quantiles_monotone(self, profile):
        prof, _ = profile
        levels = sorted(prof.quantiles)
        values = [prof.quantiles[q] for q in levels]
        assert values == sorted(values)

    def test_fraction_within_endpoints(self, profile):
        prof, _ = profile
        assert prof.fraction_within(0.0) == 0.0
        assert prof.fraction_within(1e9) == pytest.approx(0.99)

    def test_fraction_within_is_monotone(self, profile):
        prof, _ = profile
        radii = np.linspace(prof.quantiles[0.01], prof.quantiles[0.99], 10)
        fractions = [prof.fraction_within(r) for r in radii]
        assert fractions == sorted(fractions)

    def test_fraction_within_matches_quantile(self, profile):
        prof, _ = profile
        assert prof.fraction_within(prof.quantiles[0.5]) == pytest.approx(0.5, abs=0.05)

    def test_metric_recorded(self, profile):
        prof, _ = profile
        assert prof.metric == "l2"

    def test_degenerate_dataset_raises(self):
        with pytest.raises(ConfigurationError):
            distance_profile(np.zeros((50, 3)), "l2", seed=0)


class TestSuggestRadii:
    def test_count_and_order(self, profile):
        prof, _ = profile
        radii = suggest_radii(prof, num_radii=6)
        assert len(radii) == 6
        assert list(radii) == sorted(radii)

    def test_band_respected(self, profile):
        prof, _ = profile
        radii = suggest_radii(prof, low_fraction=0.01, high_fraction=0.2)
        assert prof.fraction_within(radii[0]) == pytest.approx(0.01, abs=0.02)
        assert prof.fraction_within(radii[-1]) == pytest.approx(0.2, abs=0.05)

    def test_invalid_band(self, profile):
        prof, _ = profile
        with pytest.raises(ConfigurationError):
            suggest_radii(prof, low_fraction=0.5, high_fraction=0.1)

    def test_standins_sweeps_sit_in_band(self):
        """Validates the stand-in design: the paper's radii fall in a
        sensible neighbor-fraction band for our webspam-like data."""
        ds = webspam_like(n=1500, seed=0)
        prof = distance_profile(ds.points, ds.metric, seed=0)
        assert 0.001 < prof.fraction_within(min(ds.radii))
        assert prof.fraction_within(max(ds.radii)) < 0.9


class TestHardnessProfile:
    def test_fields(self, profile):
        _, points = profile
        hardness = hardness_profile(points, "l2", radius=2.0, num_queries=20, seed=0)
        assert hardness.min_output <= hardness.avg_output <= hardness.max_output
        assert 0.0 <= hardness.hard_fraction <= 1.0
        assert hardness.n == points.shape[0]

    def test_webspam_hardness_grows_with_radius(self):
        ds = webspam_like(n=1500, seed=0)
        low = hardness_profile(ds.points, "cosine", radius=0.05, num_queries=30, seed=0)
        high = hardness_profile(ds.points, "cosine", radius=0.10, num_queries=30, seed=0)
        assert high.hard_fraction >= low.hard_fraction

    def test_custom_threshold(self, profile):
        _, points = profile
        hardness = hardness_profile(
            points, "l2", radius=2.0, num_queries=10, hard_threshold=1, seed=0
        )
        assert hardness.hard_threshold == 1
