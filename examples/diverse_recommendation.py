"""k-diverse near neighbor search — the paper's second motivating use.

Abbar et al. (WWW 2013) recommend *diverse* related articles by first
reporting all r-near neighbors of a query article and then selecting
the k most mutually distant among them.  rNNR is the expensive first
stage; this example builds it on the hybrid searcher and implements
the greedy max-min diversification on top.

Run:  python examples/diverse_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro import CostModel, HybridLSH
from repro.datasets import gaussian_mixture
from repro.distances import get_metric


def greedy_diverse_subset(
    candidates: np.ndarray, k: int, metric_name: str = "l2"
) -> np.ndarray:
    """Greedy max-min selection of ``k`` mutually distant rows.

    Starts from the pair-independent first candidate and repeatedly adds
    the candidate maximising its minimum distance to the picked set —
    the standard 2-approximation of the max-min dispersion problem.
    """
    metric = get_metric(metric_name)
    if candidates.shape[0] <= k:
        return np.arange(candidates.shape[0])
    picked = [0]
    min_dist = metric.distances_to(candidates, candidates[0])
    while len(picked) < k:
        nxt = int(np.argmax(min_dist))
        picked.append(nxt)
        np.minimum(min_dist, metric.distances_to(candidates, candidates[nxt]), out=min_dist)
    return np.asarray(picked)


def main() -> None:
    rng = np.random.default_rng(11)
    # Articles as topic-mixture embeddings: several topical clusters.
    centers = rng.uniform(-10, 10, size=(15, 32))
    points = gaussian_mixture(
        6000, 32, centers, spreads=np.full(15, 1.0), seed=rng
    )

    # Within-topic article distances concentrate near sqrt(2 * 32) ~ 8,
    # so r = 9 reports the query's whole topical neighborhood.
    radius, k = 9.0, 5
    searcher = HybridLSH(
        points,
        metric="l2",
        radius=radius,
        num_tables=50,
        cost_model=CostModel.from_ratio(6.0),
        seed=2,
    )

    query = points[123]
    result = searcher.query(query)
    print(f"query article 123: {result.output_size} related articles within r={radius} "
          f"(strategy: {result.stats.strategy.value})")

    related = points[result.ids]
    chosen = greedy_diverse_subset(related, k)
    chosen_ids = result.ids[chosen]
    print(f"\ntop-{k} diverse recommendations: {chosen_ids.tolist()}")

    metric = get_metric("l2")
    # Diversity diagnostic: min pairwise distance of the chosen set vs a
    # naive nearest-k baseline.
    def min_pairwise(rows: np.ndarray) -> float:
        dists = [
            metric(rows[i], rows[j])
            for i in range(rows.shape[0])
            for j in range(i + 1, rows.shape[0])
        ]
        return min(dists) if dists else 0.0

    nearest_k_ids = result.ids[np.argsort(result.distances)[:k]]
    print(f"min pairwise distance, diverse set : {min_pairwise(points[chosen_ids]):.2f}")
    print(f"min pairwise distance, nearest-k    : {min_pairwise(points[nearest_k_ids]):.2f}")
    print("\nDiversification needs the *complete* neighbor report — exactly "
          "what rNNR (and hence hybrid search) provides.")


if __name__ == "__main__":
    main()
