"""Near-duplicate web page detection — the paper's first motivating use.

rNNR under cosine distance over document vectors reports *every* page
within a small distance of a query page, which is exactly the
near-duplicate detection primitive of Henzinger (SIGIR 2006).  On
web-scale corpora the duplicate structure is extreme: spam farms
replicate one template thousands of times, so some queries return half
the corpus while others return nothing — the hard/easy split that
defeats pure LSH and motivates the hybrid strategy.

This example runs on the Webspam stand-in, reports duplicate groups,
and contrasts the three strategies' behaviour on a farm page vs. a
legitimate page.

Run:  python examples/near_duplicate_webpages.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import CostModel, HybridSearcher, LinearScan, LSHSearch
from repro.datasets import split_queries, webspam_like
from repro.evaluation.experiments import build_paper_index


def main() -> None:
    dataset = webspam_like(n=6000, seed=3)
    data, queries = split_queries(dataset.points, num_queries=40, seed=3)
    radius = 0.08  # near-duplicate threshold on cosine distance

    index = build_paper_index(data, "cosine", radius, num_tables=50, seed=3)
    hybrid = HybridSearcher(index, CostModel.from_ratio(dataset.beta_over_alpha))
    lsh = LSHSearch(index)
    linear = LinearScan(data, "cosine")

    print(f"corpus: {data.shape[0]} pages, d = {data.shape[1]}, r = {radius}")
    print(f"farm structure: {dataset.extras['farms']}\n")

    # --- duplicate-group census over the query sample ------------------
    group_sizes = [hybrid.query(q, radius).output_size for q in queries]
    group_sizes = np.asarray(group_sizes)
    print("duplicate-group sizes over 40 sampled pages:")
    print(f"  min {group_sizes.min()}, median {int(np.median(group_sizes))}, "
          f"max {group_sizes.max()} (n/2 = {data.shape[0] // 2})")

    hard = queries[int(np.argmax(group_sizes))]
    easy = queries[int(np.argmin(group_sizes))]

    # --- strategy comparison on one hard and one easy page -------------
    for name, page in (("hard (farm) page", hard), ("easy page", easy)):
        print(f"\n{name}:")
        for label, searcher in (("hybrid", hybrid), ("lsh", lsh), ("linear", linear)):
            start = time.perf_counter()
            result = searcher.query(page, radius)
            elapsed = time.perf_counter() - start
            extra = (
                f" -> dispatched to {result.stats.strategy.value}"
                if label == "hybrid"
                else ""
            )
            print(f"  {label:>7}: {result.output_size:>5} duplicates "
                  f"in {1000 * elapsed:7.2f} ms{extra}")

    print("\nThe hybrid searcher pays the LSH price on easy pages and the "
          "linear price on farm pages — never the worst case of either.")


if __name__ == "__main__":
    main()
