"""Streaming insertion: indexing a growing web-crawl corpus.

Algorithm 1 of the paper is inherently incremental — each arriving
point is hashed into its bucket per table and the bucket's HLL absorbs
it.  This example simulates a crawler that keeps discovering pages
(including bursts of near-duplicates from a spam farm) and answers
duplicate-report queries between batches, without ever rebuilding the
index.

Run:  python examples/streaming_crawl.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CostModel, HybridSearcher
from repro.core.presets import paper_parameters
from repro.index import LSHIndex


def crawl_batches(rng: np.random.Generator, dim: int = 128):
    """Yield (description, batch) pairs simulating a crawl."""
    template = rng.uniform(0.0, 1.0, size=dim)
    template /= np.linalg.norm(template)

    def legitimate(count):
        pages = rng.exponential(1.0, size=(count, dim))
        pages *= rng.random(size=(count, dim)) < 0.2
        pages[~pages.any(axis=1), 0] = 1.0
        return pages

    def farm(count, eps_low, eps_high):
        eps = rng.uniform(eps_low, eps_high, size=count)
        noise = rng.standard_normal(size=(count, dim)) / np.sqrt(dim)
        return template[None, :] + noise * eps[:, None]

    yield "seed crawl (legitimate pages)", legitimate(3000)
    yield "ordinary growth", legitimate(1500)
    yield "spam farm burst (near-duplicates)", farm(2500, 0.01, 0.12)
    yield "more legitimate pages", legitimate(1000)


def main() -> None:
    rng = np.random.default_rng(13)
    radius = 0.08
    batches = crawl_batches(rng)

    description, first = next(batches)
    params = paper_parameters("cosine", dim=first.shape[1], radius=radius,
                              num_tables=50, seed=3)
    index = LSHIndex(params.family, k=params.k, num_tables=params.num_tables).build(first)
    hybrid = HybridSearcher(index, CostModel.from_ratio(10.0))
    print(f"{description}: index built over {index.n} pages")

    probe = first[0]
    for description, batch in batches:
        index.insert(batch)
        result = hybrid.query(probe, radius)
        farm_probe = batch[0]
        farm_result = hybrid.query(farm_probe, radius)
        print(
            f"{description}: n = {index.n:5d} | probe page -> "
            f"{result.output_size:4d} dups ({result.stats.strategy.value}) | "
            f"newest page -> {farm_result.output_size:4d} dups "
            f"({farm_result.stats.strategy.value})"
        )

    report = index.memory_report()
    print(
        f"\nfinal index: {index.n} pages, sketches "
        f"{report['sketches'] / 2**20:.2f} MiB of {report['total'] / 2**20:.1f} MiB total"
    )
    print("After the spam burst, queries landing in the farm route to linear "
          "search; legitimate probes keep using LSH — no rebuild needed.")


if __name__ == "__main__":
    main()
