"""Adaptive execution tour: estimates-driven budgets through one facade.

Builds the benchmark's mixed workload (a dominant tight cluster that
dispatches to linear search, collision-heavy mid clusters, uniform
background), then walks the adaptive layer end to end:

1. a fixed fan-out multi-probe index vs the *same spec* under a
   ``target_candidates`` budget — the budget answers with an id-subset
   of the fixed answers while examining a fraction of the candidates
   at the same recall;
2. per-request overrides: one ``QuerySpec`` opts out of the spec
   policy, another tightens it;
3. adaptive top-k riding the hybrid path via radius-from-k estimation,
   bit-identical to the exact reference;
4. online cost-model recalibration from observed stage timings, with
   the decision counters surfaced in ``stats_snapshot()``;
5. the JSON-lines stream protocol v2 envelope carrying the same
   outcome metadata per response.

Run with::

    PYTHONPATH=src python examples/adaptive_serving.py
"""

import json

import numpy as np

from repro import Index, IndexSpec, QuerySpec
from repro.evaluation import mixed_workload
from repro.service.stream import serve_stream

N, NUM_QUERIES = 8_000, 100

points, queries, radius = mixed_workload(N, num_queries=NUM_QUERIES, seed=7)
base = IndexSpec(metric="l2", radius=radius, layout="frozen",
                 variant="multiprobe", num_probes=2, cost_ratio=6.0, seed=1)
print(f"workload: n = {N}, d = {points.shape[1]}, r = {radius:.3g}, "
      f"{NUM_QUERIES} queries")

# -- 1. fixed fan-out vs a per-query candidate budget -------------------
fixed = Index.build(points, base)
budget = Index.build(
    points, base.with_overrides(adaptive={"target_candidates": N // 100})
)
fixed_out = fixed.query(QuerySpec(queries))
budget_out = budget.query(QuerySpec(queries))

for a, b in zip(budget_out, fixed_out):
    assert set(a.ids.tolist()) <= set(b.ids.tolist())  # never invents answers
fixed_cands = sum(o.candidates_examined for o in fixed_out)
budget_cands = sum(o.candidates_examined for o in budget_out)
returned = sum(o.output_size for o in budget_out)
expected = sum(o.output_size for o in fixed_out)
print(f"fixed     : {fixed_cands:8d} candidates examined, "
      f"{expected} neighbours returned")
print(f"budget    : {budget_cands:8d} candidates examined "
      f"({budget_cands / fixed_cands:.2f}x), {returned} neighbours "
      f"({returned / expected:.1%} of fixed)")

# -- 2. per-request overrides win over the spec policy ------------------
opted_out = budget.query(QuerySpec(queries[:10], adaptive=False))
tightened = budget.query(QuerySpec(queries[:10], target_candidates=4))
for a, b in zip(opted_out, fixed_out):
    assert np.array_equal(a.ids, b.ids)  # adaptive=False == the fixed path
print(f"overrides : adaptive=False restores the fixed answers; "
      f"target_candidates=4 trims to "
      f"{sum(o.probes_used for o in tightened)} total probes "
      f"(fixed uses {sum(o.probes_used for o in fixed_out[:10])})")

# -- 3. adaptive top-k: radius-from-k estimation on the hybrid path -----
topk_spec = base.with_overrides(
    adaptive={"target_candidates": N // 100, "quality_floor": 1.0}
)
adaptive_topk = Index.build(points, topk_spec).query(QuerySpec(queries[0], k=8))
reference = fixed.query(QuerySpec(queries[0], k=8))
assert np.array_equal(adaptive_topk.ids, reference.ids)
assert np.array_equal(adaptive_topk.distances, reference.distances)
print(f"top-k     : k=8 via estimated radius {adaptive_topk.radius:.3g}, "
      f"bit-identical to the exact reference (quality_floor=1.0)")

# -- 4. online recalibration + the decision counters --------------------
tuned = Index.build(
    points,
    base.with_overrides(
        adaptive={"target_candidates": N // 100, "recalibrate": True}
    ),
)
tuned.query(QuerySpec(queries))
tuned.query(QuerySpec(queries[0], k=8))  # top-k estimates its radius
snap = tuned.stats_snapshot()
print(f"telemetry : adaptive_probes={snap['adaptive_probes']}, "
      f"radius_estimates={snap['radius_estimates']}, "
      f"recalibrations={snap['recalibrations']}")

# -- 5. stream protocol v2: the envelope over JSON lines ----------------
request = json.dumps(
    {"query": queries[0].tolist(), "target_candidates": N // 100}
)
(line,) = serve_stream(budget, [request])
doc = json.loads(line)
assert doc["v"] == 2 and doc["found"] == len(doc["ids"])
print(f"stream v2 : strategy={doc['strategy']}, "
      f"probes_used={doc['probes_used']}, "
      f"candidates_examined={doc['candidates_examined']}, "
      f"degraded={doc['degraded']}")
