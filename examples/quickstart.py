"""Quickstart: declare an index with a spec, query it, inspect decisions.

Builds the paper-configured index over a synthetic L2 dataset with both
sparse and dense regions (the Figure 1 landscape) through the
spec-driven API — one :class:`repro.IndexSpec` document describes the
whole index — answers a few queries, and shows the per-query cost
estimates that drive the LSH-vs-linear dispatch.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Index, IndexSpec, QuerySpec
from repro.datasets import gaussian_mixture


def main() -> None:
    rng = np.random.default_rng(7)

    # A mixed-density landscape: one very dense clump (hard queries
    # live here; within-clump distances ~1, well inside the radius)
    # plus scattered sparse clusters (easy queries).
    centers = np.concatenate([np.zeros((1, 24)), rng.uniform(-20, 20, size=(12, 24))])
    spreads = np.array([0.15] + [1.2] * 12)
    weights = np.array([0.5] + [0.5 / 12] * 12)
    points = gaussian_mixture(
        8000, 24, centers, spreads, weights=weights, seed=rng
    )

    # The whole index in one declarative document (JSON round-trippable:
    # spec.to_dict() is exactly what the CLI and wire protocol speak).
    spec = IndexSpec(
        metric="l2",
        radius=2.0,
        num_tables=50,
        delta=0.1,
        cost_ratio=6.0,  # the paper's Corel beta/alpha ratio
        seed=1,
    )
    index = Index.build(points, spec)
    print(f"index: {index!r}")
    print(f"cost model: {index.cost_model!r}")
    print(f"n = {index.n}, sketch memory = "
          f"{index.engine.index.sketch_memory_bytes / 1024:.1f} KiB\n")

    print(f"{'query':>6} {'strategy':>8} {'#coll':>8} {'est cand':>9} "
          f"{'found':>6} {'LSHCost':>10} {'LinCost':>10}")
    for i in range(0, 40, 4):
        result = index.query(QuerySpec(points[i]))
        s = result.stats
        print(
            f"{i:>6} {s.strategy.value:>8} {s.num_collisions:>8} "
            f"{s.estimated_candidates:>9.1f} {result.output_size:>6} "
            f"{s.estimated_lsh_cost:>10.1f} {s.linear_cost:>10.1f}"
        )

    # One batch through the same uniform query surface (fused hashing).
    results = index.query(QuerySpec(points[:100]))
    linear_share = np.mean([r.stats.strategy.value == "linear" for r in results])
    print(f"\nfraction of queries answered by linear search: {linear_share:.0%}")
    print("dense-clump queries route to linear search; sparse ones to LSH.")

    # Exact top-k rides the same method — just ask with k instead of radius.
    topk = index.query(QuerySpec(points[0], k=5))
    print(f"top-5 of query 0: ids {topk.ids.tolist()}, "
          f"kth distance {topk.radius:.3g}")


if __name__ == "__main__":
    main()
