"""Extending the library: a custom metric with its own LSH family.

The paper frames hybrid search as working "in an arbitrary
high-dimensional space and distance measure that allows LSH".  This
example demonstrates that extensibility end to end: we register
Chebyshev-like *quantised L1* distance on integer grids, define a
matching LSH family (grid snapping — a degenerate p-stable scheme), and
run the full hybrid pipeline on it.

Run:  python examples/custom_metric.py
"""

from __future__ import annotations

import numpy as np

from repro import CostModel, HybridSearcher, LinearScan
from repro.distances import Metric, register_metric
from repro.hashing.base import LSHFamily
from repro.hashing.composite import CompositeHash
from repro.index import LSHIndex


# --- 1. the metric -----------------------------------------------------
def grid_l1(x: np.ndarray, y: np.ndarray) -> float:
    """L1 distance after snapping both vectors to the unit integer grid."""
    return float(np.abs(np.floor(x) - np.floor(y)).sum())


def grid_l1_batch(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    return np.abs(np.floor(points) - np.floor(q)).sum(axis=1)


GRID_L1 = register_metric(
    Metric(
        name="grid_l1",
        scalar=grid_l1,
        batch=grid_l1_batch,
        description="L1 on integer-grid-snapped vectors",
    )
)


# --- 2. the LSH family -------------------------------------------------
class GridLSH(LSHFamily):
    """Snap a random subset of coordinates to a coarse grid.

    An atomic hash picks one coordinate and quantises it into cells of
    width ``w``; two points at grid-L1 distance ``c`` collide roughly
    with probability ``max(0, 1 - c / (w * dim))`` — crude, but it is
    (r, cr, p1, p2)-sensitive, which is all the framework needs.
    """

    metric_name = "grid_l1"

    def __init__(self, dim: int, w: float = 4.0, seed=None) -> None:
        super().__init__(dim, seed=seed)
        self.w = float(w)

    def sample(self, k: int) -> CompositeHash:
        coords = self._rng.integers(0, self.dim, size=k)
        offsets = self._rng.uniform(0.0, self.w, size=k)
        width = self.w

        def kernel(points: np.ndarray) -> np.ndarray:
            snapped = np.floor(np.asarray(points, dtype=np.float64))
            return np.floor((snapped[:, coords] + offsets) / width).astype(np.int64)

        return CompositeHash(kernel, k=k, dim=self.dim)

    def collision_probability(self, distance: float) -> float:
        return max(0.0, 1.0 - distance / (self.w * self.dim))


# --- 3. the hybrid pipeline on top ------------------------------------
def main() -> None:
    rng = np.random.default_rng(4)
    centers = rng.integers(0, 40, size=(8, 12)).astype(np.float64)
    points = centers[rng.integers(0, 8, size=4000)] + rng.normal(0, 1.5, size=(4000, 12))

    family = GridLSH(dim=12, w=4.0, seed=1)
    index = LSHIndex(family, k=6, num_tables=20).build(points)
    hybrid = HybridSearcher(index, CostModel.from_ratio(4.0))
    scan = LinearScan(points, "grid_l1")

    radius = 12.0
    query = points[42]
    result = hybrid.query(query, radius)
    exact = scan.query(query, radius)
    print(f"custom metric 'grid_l1' registered; family {type(family).__name__}")
    print(f"hybrid found {result.output_size} of {exact.output_size} exact neighbors "
          f"(strategy: {result.stats.strategy.value})")
    found = set(result.ids.tolist()) <= set(exact.ids.tolist())
    print(f"reported set is a subset of the exact set: {found}")
    print("\nAny (r, cr, p1, p2)-sensitive family + metric pair plugs into the "
          "same sketched index and cost-model dispatch.")


if __name__ == "__main__":
    main()
