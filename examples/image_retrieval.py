"""Content-based image retrieval — the paper's third motivating use.

Reproduces the paper's full MNIST pipeline: raw images are reduced to
64-bit SimHash fingerprints (Yu et al.'s circulant binary embedding is
the cited industrial variant), and spherical range reporting under
Hamming distance retrieves every image whose fingerprint is within
``r`` bits of the query's.  Retrieval quality is evaluated by class
purity: the fraction of retrieved images sharing the query's digit
class.

Run:  python examples/image_retrieval.py
"""

from __future__ import annotations

import numpy as np

from repro import CostModel, HybridSearcher
from repro.datasets import mnist_like, split_queries
from repro.evaluation.experiments import build_paper_index


def main() -> None:
    dataset = mnist_like(n=8000, seed=5)
    fingerprints = dataset.points
    labels = dataset.extras["labels"]

    # Keep fingerprints and labels aligned through the query split.
    ids = np.arange(dataset.n).reshape(-1, 1).astype(np.float64)
    combined = np.hstack([fingerprints.astype(np.float64), ids])
    data_rows, query_rows = split_queries(combined, num_queries=30, seed=5)
    data = data_rows[:, :-1].astype(np.uint8)
    data_labels = labels[data_rows[:, -1].astype(int)]
    queries = query_rows[:, :-1].astype(np.uint8)
    query_labels = labels[query_rows[:, -1].astype(int)]

    print(f"gallery: {data.shape[0]} images as 64-bit fingerprints")
    index = build_paper_index(data, "hamming", radius=14.0, num_tables=50, seed=5)
    hybrid = HybridSearcher(index, CostModel.from_ratio(dataset.beta_over_alpha))

    print(f"\n{'radius':>6} {'avg found':>10} {'class purity':>13} {'%linear':>8}")
    for radius in dataset.radii:
        found, purity, linear_calls = [], [], 0
        for q, q_label in zip(queries, query_labels):
            result = hybrid.query(q, float(radius))
            found.append(result.output_size)
            if result.output_size:
                purity.append(float(np.mean(data_labels[result.ids] == q_label)))
            linear_calls += result.stats.strategy.value == "linear"
        print(
            f"{radius:>6g} {np.mean(found):>10.1f} "
            f"{np.mean(purity) if purity else float('nan'):>13.2f} "
            f"{100 * linear_calls / len(queries):>7.0f}%"
        )

    print("\nGrowing the radius trades precision (class purity) for recall "
          "(matches found) — the retrieval knob rNNR exposes.")


if __name__ == "__main__":
    main()
