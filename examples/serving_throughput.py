"""Serving tour: one spec-driven ``Index`` facade for the whole stack.

Builds a mixed workload (dense clusters + uniform background — the
landscape of the paper's Figure 1), then walks the serving subsystem
through the :class:`repro.Index` facade:

1. a batched single index answering 200 queries in one
   :class:`~repro.QuerySpec`, bit-identical to the sequential loop —
   then the same index on the **frozen CSR layout**
   (``layout="frozen"``: contiguous bucket arrays, vectorised sketch
   merging, zero per-bucket Python objects), still bit-identical;
2. a 4-shard index built from the *same spec document* plus
   ``num_shards=4``, with exact global top-k through the same
   ``query`` method;
3. live inserts that every later query sees immediately;
4. a cache-fronted index (``cache_size`` in the spec) absorbing a
   repeat-heavy query stream — inserts only evict the touched shard's
   entries;
5. save / reopen round-trip: the persisted index answers identically.

Run with::

    PYTHONPATH=src python examples/serving_throughput.py
"""

import tempfile
import time

import numpy as np

from repro import Index, IndexSpec, QuerySpec
from repro.evaluation import mixed_workload

N, NUM_QUERIES = 8_000, 200

points, queries, radius = mixed_workload(N, num_queries=NUM_QUERIES, seed=7)
spec = IndexSpec(metric="l2", radius=radius, cost_ratio=6.0, seed=1)
print(f"workload: n = {N}, d = {points.shape[1]}, r = {radius:.3g}, "
      f"{NUM_QUERIES} queries")

# -- 1. batched facade vs the sequential loop ---------------------------
index = Index.build(points, spec)
started = time.perf_counter()
sequential = [index.query(QuerySpec(q)) for q in queries]
seq_seconds = time.perf_counter() - started

started = time.perf_counter()
batched = index.query(QuerySpec(queries))
bat_seconds = time.perf_counter() - started

assert all(
    np.array_equal(s.ids, b.ids) and np.array_equal(s.distances, b.distances)
    for s, b in zip(sequential, batched)
)
strategies = [r.stats.strategy.value for r in batched]
print(f"sequential: {NUM_QUERIES / seq_seconds:7.0f} qps")
print(f"batched   : {NUM_QUERIES / bat_seconds:7.0f} qps "
      f"({seq_seconds / bat_seconds:.1f}x, identical answers, "
      f"{strategies.count('linear')}/{NUM_QUERIES} went linear)")

# -- 1b. the frozen CSR layout: same answers, contiguous arrays ---------
frozen = Index.build(points, spec.with_overrides(layout="frozen"))
frozen.query(QuerySpec(queries[:2]))  # warm
started = time.perf_counter()
frozen_batched = frozen.query(QuerySpec(queries))
fz_seconds = time.perf_counter() - started
assert all(
    np.array_equal(s.ids, f.ids) and np.array_equal(s.distances, f.distances)
    for s, f in zip(sequential, frozen_batched)
)
print(f"frozen    : {NUM_QUERIES / fz_seconds:7.0f} qps "
      f"({seq_seconds / fz_seconds:.1f}x, identical answers, "
      f"CSR arrays, no per-bucket objects)")

# -- 2. sharded index from the same spec + exact top-k ------------------
sharded = Index.build(points, spec.with_overrides(num_shards=4))
started = time.perf_counter()
sharded.query(QuerySpec(queries))
print(f"sharded   : {NUM_QUERIES / (time.perf_counter() - started):7.0f} qps "
      f"(K = 4, shard sizes {sharded.engine.shard_sizes()})")

topk = sharded.query(QuerySpec(queries[0], k=5))
print(f"top-5 of query 0: ids {topk.ids.tolist()}, "
      f"kth distance {topk.radius:.3g}")

# -- 3. inserts are visible immediately ---------------------------------
new_ids = sharded.insert(queries[:3] + 1e-4)
hits = [int(new_id in sharded.query(QuerySpec(q)).ids)
        for new_id, q in zip(new_ids, queries[:3])]
print(f"inserted {len(new_ids)} points -> found by the next query: "
      f"{sum(hits)}/{len(hits)}")

# -- 4. cache-fronted sharded serving under a repeat-heavy stream -------
served = Index.build(points, spec.with_overrides(num_shards=4, cache_size=4096))
rng = np.random.default_rng(0)
stream = queries[rng.integers(0, 20, size=500)]  # hot set of 20 queries
for start in range(0, len(stream), 50):          # arrives in micro-batches
    served.query(QuerySpec(stream[start : start + 50]))
served.insert(queries[:1] + 5e-4)                # evicts ONE shard's partials
served.query(QuerySpec(stream[:50]))             # 3 of 4 shards still cached
stats = served.stats
saved = stats.cache_hits + stats.deduplicated
print(f"service   : {stats.queries_served} served in {stats.batches} batches, "
      f"{saved} without engine work ({stats.cache_hits} cache hits + "
      f"{stats.deduplicated} in-batch duplicates), "
      f"{stats.qps:.0f} qps including cache")

# -- 5. persistence: save, reopen, answers are bit-identical ------------
with tempfile.TemporaryDirectory() as tmp:
    path = f"{tmp}/serving-index"
    sharded.save(path)
    reopened = Index.open(path)
    a = sharded.query(QuerySpec(queries[:50]))
    b = reopened.query(QuerySpec(queries[:50]))
    assert all(
        np.array_equal(x.ids, y.ids) and np.array_equal(x.distances, y.distances)
        for x, y in zip(a, b)
    )
    print(f"persisted : {reopened!r} reopened from disk, identical answers")
