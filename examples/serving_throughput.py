"""Serving tour: batched queries, sharding, inserts, caching, QPS.

Builds a mixed workload (dense clusters + uniform background — the
landscape of the paper's Figure 1), then walks the serving subsystem:

1. a :class:`~repro.service.batch.BatchQueryEngine` answering 200
   queries in one batch, bit-identical to the sequential loop;
2. a :class:`~repro.service.sharded.ShardedHybridIndex` fanning the
   same batch across 4 shards, plus exact global top-k;
3. live inserts that every later query sees immediately;
4. a cache-fronted :class:`~repro.service.service.QueryService`
   absorbing a repeat-heavy query stream.

Run with::

    PYTHONPATH=src python examples/serving_throughput.py
"""

import time

import numpy as np

from repro.core import CostModel
from repro.evaluation import mixed_workload
from repro.service import (
    BatchQueryEngine,
    QueryResultCache,
    QueryService,
    ShardedHybridIndex,
)

N, NUM_QUERIES = 8_000, 200

points, queries, radius = mixed_workload(N, num_queries=NUM_QUERIES, seed=7)
cost_model = CostModel.from_ratio(6.0)
print(f"workload: n = {N}, d = {points.shape[1]}, r = {radius:.3g}, "
      f"{NUM_QUERIES} queries")

# -- 1. batched engine vs the sequential loop ---------------------------
engine = BatchQueryEngine.from_points(
    points, metric="l2", radius=radius, cost_model=cost_model, seed=1
)
started = time.perf_counter()
sequential = [engine.searcher.query(q, radius) for q in queries]
seq_seconds = time.perf_counter() - started

started = time.perf_counter()
batched = engine.query_batch(queries)
bat_seconds = time.perf_counter() - started

assert all(
    np.array_equal(s.ids, b.ids) and np.array_equal(s.distances, b.distances)
    for s, b in zip(sequential, batched)
)
strategies = [r.stats.strategy.value for r in batched]
print(f"sequential: {NUM_QUERIES / seq_seconds:7.0f} qps")
print(f"batched   : {NUM_QUERIES / bat_seconds:7.0f} qps "
      f"({seq_seconds / bat_seconds:.1f}x, identical answers, "
      f"{strategies.count('linear')}/{NUM_QUERIES} went linear)")

# -- 2. sharded index + exact top-k -------------------------------------
sharded = ShardedHybridIndex(
    points, metric="l2", radius=radius, num_shards=4,
    cost_model=cost_model, seed=1,
)
started = time.perf_counter()
sharded.query_batch(queries)
print(f"sharded   : {NUM_QUERIES / (time.perf_counter() - started):7.0f} qps "
      f"(K = 4, shard sizes {sharded.shard_sizes()})")

topk = sharded.query_topk(queries[0], k=5)
print(f"top-5 of query 0: ids {topk.ids.tolist()}, "
      f"kth distance {topk.radius:.3g}")

# -- 3. inserts are visible immediately ---------------------------------
new_ids = sharded.insert(queries[:3] + 1e-4)
hits = [int(new_id in sharded.query(q).ids)
        for new_id, q in zip(new_ids, queries[:3])]
print(f"inserted {len(new_ids)} points -> found by the next query: "
      f"{sum(hits)}/{len(hits)}")

# -- 4. cache-fronted service under a repeat-heavy stream ---------------
service = QueryService(engine, cache=QueryResultCache(maxsize=1024))
rng = np.random.default_rng(0)
stream = queries[rng.integers(0, 20, size=500)]  # hot set of 20 queries
for start in range(0, len(stream), 50):          # arrives in micro-batches
    service.query_batch(stream[start : start + 50])
stats = service.stats
saved = stats.cache_hits + stats.deduplicated
print(f"service   : {stats.queries_served} served in {stats.batches} batches, "
      f"{saved} without engine work ({stats.cache_hits} cache hits + "
      f"{stats.deduplicated} in-batch duplicates), "
      f"{stats.qps:.0f} qps including cache")
